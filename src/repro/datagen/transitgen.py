"""Scheduled vs realtime transit feeds (the GTFS / GTFS-RT stand-in).

A deterministic bus network inside the Beijing box: routes are stop
sequences, a schedule assigns each trip scheduled arrival/departure
times per stop, and the realtime feed perturbs the schedule with a
per-trip delay random walk plus stretched dwell times — the signal the
transit-delay streaming scenario aggregates into per-segment
delay/headway/dwell analytics.

Realtime events are published in *arrival order plus bounded jitter*:
each event's publish time is its actual arrival plus a uniform delay in
``[0, disorder_s]``, and the feed is sorted by publish time.  That
makes the stream out of order by at most ``disorder_s`` seconds of
event time — exactly the bound a
:class:`~repro.streaming.watermark.WatermarkTracker` with
``max_delay_s=disorder_s`` promises, so a correctly-configured pipeline
drops zero late events.
"""

from __future__ import annotations

import math
import random

from repro.core.schema import Field, FieldType, Schema
from repro.datagen.trajgen import AREA, TRAJ_TIME_START
from repro.geometry.distance import METERS_PER_DEGREE

#: Feed epoch: aligned with the Traj dataset (2014-03-01T00:00Z).
TRANSIT_TIME_START = TRAJ_TIME_START

#: Target table schema for the realtime feed (one row per stop arrival).
TRANSIT_RT_SCHEMA = Schema([
    Field("fid", FieldType.STRING, primary_key=True),   # "trip:seq"
    Field("route", FieldType.STRING),
    Field("trip", FieldType.STRING),
    Field("stop", FieldType.STRING),
    Field("seq", FieldType.LONG),
    Field("time", FieldType.DATE),      # actual arrival (event time)
    Field("geom", FieldType.POINT),
    Field("delay", FieldType.DOUBLE),   # actual - scheduled arrival, s
    Field("dwell", FieldType.DOUBLE),   # actual dwell at the stop, s
    Field("sched", FieldType.DATE),     # scheduled arrival
])

#: LOAD CONFIG mapping feed events into :data:`TRANSIT_RT_SCHEMA`.
TRANSIT_RT_CONFIG = {
    "fid": "key",
    "route": "route_id",
    "trip": "trip_id",
    "stop": "stop_id",
    "seq": "seq",
    "time": "arr_ts",
    "geom": "lng_lat_to_point(lng, lat)",
    "delay": "delay_s",
    "dwell": "dwell_s",
    "sched": "sched_arr",
}


class TransitGenerator:
    """Deterministic transit network + schedule + realtime feed."""

    def __init__(self, seed: int = 20140301, num_routes: int = 4,
                 stops_per_route: int = 8,
                 area: tuple[float, float, float, float] = AREA,
                 start_time: float = TRANSIT_TIME_START,
                 stop_spacing_m: tuple[float, float] = (600.0, 1500.0)):
        self.rng = random.Random(seed)
        self.area = area
        self.start_time = start_time
        self.routes: dict[str, list[dict]] = {}
        for r in range(num_routes):
            self.routes[f"R{r}"] = self._make_route(
                f"R{r}", stops_per_route, stop_spacing_m)

    def _make_route(self, route_id: str, num_stops: int,
                    spacing_m: tuple[float, float]) -> list[dict]:
        min_lng, min_lat, max_lng, max_lat = self.area
        # Start away from the edges so the route stays inside the box.
        lng = self.rng.uniform(min_lng + 0.1, max_lng - 0.1)
        lat = self.rng.uniform(min_lat + 0.1, max_lat - 0.1)
        heading = self.rng.uniform(0.0, 2.0 * math.pi)
        stops = []
        for seq in range(num_stops):
            stops.append({"stop_id": f"{route_id}S{seq}", "seq": seq,
                          "lng": lng, "lat": lat})
            step = self.rng.uniform(*spacing_m) / METERS_PER_DEGREE
            heading += self.rng.gauss(0.0, 0.4)
            lng = min(max(lng + step * math.cos(heading), min_lng), max_lng)
            lat = min(max(lat + step * math.sin(heading), min_lat), max_lat)
        return stops

    def schedule(self, trips_per_route: int = 6, headway_s: float = 600.0,
                 dwell_s: float = 30.0, speed_mps: float = 8.0) -> list[dict]:
        """Scheduled stop times: one row per (trip, stop)."""
        rows = []
        for route_id, stops in sorted(self.routes.items()):
            for k in range(trips_per_route):
                trip_id = f"{route_id}T{k}"
                at = self.start_time + k * headway_s
                prev = None
                for stop in stops:
                    if prev is not None:
                        dx = (stop["lng"] - prev["lng"]) * METERS_PER_DEGREE
                        dy = (stop["lat"] - prev["lat"]) * METERS_PER_DEGREE
                        at += math.hypot(dx, dy) / speed_mps + dwell_s
                    rows.append({"trip_id": trip_id, "route_id": route_id,
                                 "stop_id": stop["stop_id"],
                                 "seq": stop["seq"],
                                 "lng": stop["lng"], "lat": stop["lat"],
                                 "sched_arr": at,
                                 "sched_dep": at + dwell_s})
                    prev = stop
        return rows

    def realtime_feed(self, schedule_rows: list[dict] | None = None,
                      disorder_s: float = 120.0,
                      delay_step_s: tuple[float, float] = (15.0, 40.0),
                      **schedule_kwargs) -> list[dict]:
        """The realtime feed: perturbed stop events in publish order.

        Each event carries both actual (``arr_ts``/``dep_ts``) and
        scheduled times plus the derived ``delay_s``/``dwell_s``, and is
        at most ``disorder_s`` seconds of event time out of order.
        """
        if schedule_rows is None:
            schedule_rows = self.schedule(**schedule_kwargs)
        delays: dict[str, float] = {}
        events = []
        for sched in schedule_rows:
            trip_id = sched["trip_id"]
            delay = delays.get(trip_id)
            if delay is None:
                delay = max(0.0, self.rng.gauss(20.0, 30.0))
            else:
                delay = max(-60.0, delay + self.rng.gauss(*delay_step_s))
            delays[trip_id] = delay
            arr_ts = sched["sched_arr"] + delay
            dwell = ((sched["sched_dep"] - sched["sched_arr"])
                     * self.rng.uniform(0.7, 2.5))
            events.append({
                "key": f"{trip_id}:{sched['seq']}",
                "trip_id": trip_id,
                "route_id": sched["route_id"],
                "stop_id": sched["stop_id"],
                "seq": sched["seq"],
                "lng": sched["lng"], "lat": sched["lat"],
                "arr_ts": arr_ts,
                "dep_ts": arr_ts + dwell,
                "sched_arr": sched["sched_arr"],
                "sched_dep": sched["sched_dep"],
                "delay_s": delay,
                "dwell_s": dwell,
                "publish_ts": arr_ts + self.rng.uniform(0.0, disorder_s),
            })
        events.sort(key=lambda e: (e["publish_ts"], e["key"]))
        return events


def generate_transit_feed(seed: int = 20140301, num_routes: int = 4,
                          stops_per_route: int = 8,
                          trips_per_route: int = 6,
                          headway_s: float = 600.0,
                          disorder_s: float = 120.0) -> list[dict]:
    """One-call realtime feed for demos/benchmarks/tests."""
    generator = TransitGenerator(seed=seed, num_routes=num_routes,
                                 stops_per_route=stops_per_route)
    return generator.realtime_feed(trips_per_route=trips_per_route,
                                   headway_s=headway_s,
                                   disorder_s=disorder_s)
