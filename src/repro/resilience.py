"""Request resilience: deadlines, admission control, circuit breaking.

The paper's service layer (Section IV-E / VII) puts one shared engine
behind an SDK used by many concurrent users; this module supplies the
operational machinery such a deployment needs, mirroring what the HBase
client stack ships (``hbase.rpc.timeout`` / operation timeouts, region
retry policy, ``RegionTooBusyException`` load shedding):

* :class:`Deadline` — a per-statement budget on the *simulated* clock.
  Every cost charged to the statement's job consumes budget; scan and
  aggregation loops check the remainder cooperatively and raise
  :class:`~repro.errors.QueryTimeoutError`, so a statement stuck behind a
  slow or recovering region is bounded instead of stalled forever.
* :class:`RequestContext` — carries the deadline and the partial-results
  mode through service -> SQL -> kvstore, and collects the structured
  skipped-region report when degraded scans skip dead regions.
* :class:`AdmissionController` — bounded in-flight statements (globally
  and per user) with a bounded wait queue; when full the server sheds
  load with :class:`~repro.errors.ServerOverloadedError` instead of
  queueing unboundedly.
* :class:`CircuitBreaker` — the classic closed/open/half-open state
  machine the SDK wraps around retryable failures so a flapping server
  fails fast instead of feeding retry storms.
* :func:`backoff_ms` — capped exponential backoff with seeded jitter,
  decorrelating concurrent clients' retries.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    CircuitOpenError,
    QueryTimeoutError,
    ServerOverloadedError,
)
from repro.observability.events import (
    AdmissionShedEvent,
    BreakerTripEvent,
)


# -- deadlines ----------------------------------------------------------------

class Deadline:
    """A simulated-time budget for one statement.

    ``charge`` consumes budget; ``check`` raises once the budget is
    exhausted.  Keeping charge and check separate makes cancellation
    cooperative: work already performed is accounted for exactly, and
    the overrun on expiry is bounded by the largest single charge
    between two checks.
    """

    __slots__ = ("budget_ms", "consumed_ms")

    def __init__(self, budget_ms: float):
        if budget_ms <= 0:
            raise ValueError(f"deadline budget must be positive, "
                             f"got {budget_ms}")
        self.budget_ms = float(budget_ms)
        self.consumed_ms = 0.0

    @property
    def remaining_ms(self) -> float:
        return self.budget_ms - self.consumed_ms

    @property
    def expired(self) -> bool:
        return self.consumed_ms > self.budget_ms

    @property
    def overrun_ms(self) -> float:
        return max(0.0, self.consumed_ms - self.budget_ms)

    def charge(self, ms: float) -> None:
        self.consumed_ms += ms

    def check(self, operation: str = "") -> None:
        if self.expired:
            raise QueryTimeoutError(self.budget_ms, self.consumed_ms,
                                    operation)

    def __repr__(self) -> str:
        return (f"Deadline({self.consumed_ms:.1f}/"
                f"{self.budget_ms:.1f} ms)")


@dataclass(frozen=True, slots=True)
class SkippedRegion:
    """One region a degraded scan skipped, and why."""

    table: str
    region_id: int
    server: int
    reason: str

    def as_dict(self) -> dict:
        return {"table": self.table, "region_id": self.region_id,
                "server": self.server, "reason": self.reason}


class RequestContext:
    """Per-statement state threaded from the service layer to the store.

    Holds the optional :class:`Deadline`, the opt-in partial-results
    flag, and the skipped-region report a degraded multi-region scan
    accumulates.  ``bind`` attaches the statement's
    :class:`~repro.cluster.simclock.SimJob` so simulated charges (and
    injected gray-failure latency) consume deadline budget.

    ``profile`` optionally carries a
    :class:`~repro.observability.profile.QueryProfile`: instrumentation
    points along the statement's path (physical operators, per-region
    scans) attach trace spans to it when present and cost nothing when
    absent.

    ``read_mode`` optionally overrides the store's replicated-read
    serving mode for this one statement (``"primary"`` /
    ``"follower"`` / ``"hedged"``), and ``hedge_ms`` overrides the
    hedged-read delay; :meth:`hedge_budget_ms` couples the hedge delay
    to the deadline so a statement running out of budget hedges
    earlier rather than waiting out a slow primary.
    """

    def __init__(self, deadline: Deadline | None = None,
                 partial_results: bool = False,
                 profile=None, read_mode: str | None = None,
                 hedge_ms: float | None = None):
        self.deadline = deadline
        self.partial_results = partial_results
        self.profile = profile
        self.read_mode = read_mode
        self.hedge_ms = hedge_ms
        self.skipped: list[SkippedRegion] = []
        self.job = None

    def bind(self, job) -> None:
        """Attach the statement's simulated-time job to this context.

        Cost the job accumulated before binding is charged to the
        deadline retroactively, so write paths that bind after the work
        (INSERT/LOAD) still consume budget for it.
        """
        self.job = job
        job.deadline = self.deadline
        if self.deadline is not None and job.elapsed_ms:
            self.deadline.charge(job.elapsed_ms)

    def check(self, operation: str = "") -> None:
        """Cooperative cancellation point."""
        if self.deadline is not None:
            self.deadline.check(operation)

    def charge(self, ms: float, label: str = "fault_latency") -> None:
        """Charge simulated time (e.g. injected gray-failure latency).

        Charged through the bound job when one exists so the latency
        shows up in the statement's ``sim_ms`` and breakdown; otherwise
        straight onto the deadline.  Either way the deadline is checked,
        so an expired budget surfaces at the next charge.
        """
        if self.job is not None:
            self.job.charge_fixed(label, ms)
        elif self.deadline is not None:
            self.deadline.charge(ms)
        self.check()

    def hedge_budget_ms(self, default_ms: float) -> float:
        """The hedge delay for one read under this context.

        The statement's override wins over the store default; either
        way the delay is capped at half the remaining deadline budget —
        a statement nearly out of time cannot afford to wait out a
        slow primary before trying a follower.
        """
        budget = self.hedge_ms if self.hedge_ms is not None \
            else default_ms
        if self.deadline is not None:
            budget = min(budget,
                         max(0.0, self.deadline.remaining_ms) / 2.0)
        return budget

    def record_skip(self, table: str, region_id: int, server: int,
                    reason: str) -> None:
        self.skipped.append(SkippedRegion(table, region_id, server,
                                          reason))

    @property
    def skipped_report(self) -> list[dict]:
        return [s.as_dict() for s in self.skipped]


# -- admission control --------------------------------------------------------

#: Server-wide defaults, sized for the simulated 5-server cluster.
DEFAULT_MAX_IN_FLIGHT = 32
DEFAULT_MAX_PER_USER = 8
DEFAULT_MAX_QUEUE = 16
DEFAULT_WAIT_TIMEOUT_S = 2.0


class AdmissionController:
    """Bounded concurrency for the shared engine.

    ``acquire`` admits a statement when the global in-flight count is
    under ``max_in_flight`` and the user is under ``max_per_user``;
    otherwise it waits in a bounded queue (up to ``wait_timeout_s``) and
    sheds with :class:`~repro.errors.ServerOverloadedError` when the
    queue is full or the wait times out.  Thread-safe so a real WSGI
    binding could call it from worker threads.
    """

    def __init__(self, max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
                 max_per_user: int = DEFAULT_MAX_PER_USER,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 wait_timeout_s: float = DEFAULT_WAIT_TIMEOUT_S,
                 clock=time.monotonic):
        self.max_in_flight = max_in_flight
        self.max_per_user = max_per_user
        self.max_queue = max_queue
        self.wait_timeout_s = wait_timeout_s
        self._clock = clock
        self._cond = threading.Condition()
        self._in_flight = 0
        self._per_user: dict[str, int] = {}
        self._waiting = 0
        # Operational counters (surfaced by JustServer.admission_stats).
        self.admitted = 0
        self.shed = 0
        self.peak_in_flight = 0
        self.metrics = None
        self.events = None

    def bind_metrics(self, registry) -> None:
        """Report admissions/sheds/in-flight into a metrics registry."""
        self.metrics = registry

    def bind_events(self, log) -> None:
        """Emit an :class:`AdmissionShedEvent` per shed into ``log``."""
        self.events = log

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def waiting(self) -> int:
        return self._waiting

    def _shed(self, scope: str, count: int, limit: int):
        self.shed += 1
        if self.metrics is not None:
            self.metrics.counter("admission.shed").inc()
        if self.events is not None:
            self.events.emit(AdmissionShedEvent(scope=scope, count=count,
                                                limit=limit))
        raise ServerOverloadedError(scope, count, limit)

    def acquire(self, user: str,
                wait_timeout_s: float | None = None) -> None:
        timeout = self.wait_timeout_s if wait_timeout_s is None \
            else wait_timeout_s
        with self._cond:
            if self._per_user.get(user, 0) >= self.max_per_user:
                self._shed(f"user {user!r}", self._per_user.get(user, 0),
                           self.max_per_user)
            if self._in_flight >= self.max_in_flight:
                if self._waiting >= self.max_queue:
                    self._shed("wait queue full", self._waiting,
                               self.max_queue)
                self._waiting += 1
                try:
                    give_up_at = self._clock() + timeout
                    while self._in_flight >= self.max_in_flight:
                        remaining = give_up_at - self._clock()
                        if remaining <= 0:
                            self._shed("admission wait timed out",
                                       self._in_flight,
                                       self.max_in_flight)
                        self._cond.wait(remaining)
                finally:
                    self._waiting -= 1
                # Re-check the per-user bound: it may have filled while
                # this statement queued.
                if self._per_user.get(user, 0) >= self.max_per_user:
                    self._shed(f"user {user!r}",
                               self._per_user.get(user, 0),
                               self.max_per_user)
            self._in_flight += 1
            self._per_user[user] = self._per_user.get(user, 0) + 1
            self.admitted += 1
            self.peak_in_flight = max(self.peak_in_flight,
                                      self._in_flight)
            if self.metrics is not None:
                self.metrics.counter("admission.admitted").inc()
                self.metrics.gauge("admission.in_flight").set(
                    self._in_flight)

    def release(self, user: str) -> None:
        with self._cond:
            self._in_flight -= 1
            count = self._per_user.get(user, 0) - 1
            if count <= 0:
                self._per_user.pop(user, None)
            else:
                self._per_user[user] = count
            if self.metrics is not None:
                self.metrics.gauge("admission.in_flight").set(
                    self._in_flight)
            self._cond.notify()

    def stats(self) -> dict:
        with self._cond:
            return {"in_flight": self._in_flight,
                    "waiting": self._waiting,
                    "admitted": self.admitted,
                    "shed": self.shed,
                    "peak_in_flight": self.peak_in_flight}


# -- circuit breaking ---------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed/open/half-open breaker over retryable call outcomes.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, ``before_call`` fails fast with
    :class:`~repro.errors.CircuitOpenError` until ``reset_timeout_s``
    elapses, then the breaker half-opens and admits up to
    ``half_open_probes`` probe calls.  A probe success closes the
    circuit; a probe failure re-opens it and restarts the cooldown.
    ``clock`` is injectable so tests (and the simulation) control time.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0,
                 half_open_probes: int = 1,
                 clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self._probes_in_flight = 0
        # Counters for operational visibility.
        self.times_opened = 0
        self.fast_failures = 0
        self.metrics = None
        self.events = None

    def bind_metrics(self, registry) -> None:
        """Report opens/fast-failures into a metrics registry."""
        self.metrics = registry

    def bind_events(self, log) -> None:
        """Emit a :class:`BreakerTripEvent` per open into ``log``."""
        self.events = log

    def _count_fast_failure(self) -> None:
        self.fast_failures += 1
        if self.metrics is not None:
            self.metrics.counter("breaker.fast_failures").inc()

    def before_call(self) -> None:
        """Gate one call; raises :class:`CircuitOpenError` when open."""
        if self.state == OPEN:
            elapsed = self._clock() - self.opened_at
            if elapsed < self.reset_timeout_s:
                self._count_fast_failure()
                raise CircuitOpenError(self.reset_timeout_s - elapsed)
            self.state = HALF_OPEN
            self._probes_in_flight = 0
        if self.state == HALF_OPEN:
            if self._probes_in_flight >= self.half_open_probes:
                self._count_fast_failure()
                raise CircuitOpenError(0.0)
            self._probes_in_flight += 1

    def abandon_probe(self) -> None:
        """A gated call ended with no backend verdict: free its probe.

        Used when a call admitted through the breaker never reached the
        backend (e.g. session re-authentication kept failing), so the
        half-open probe slot is not leaked — a leaked slot would fast-
        fail every later call with nothing left to close the circuit.
        """
        if self.state == HALF_OPEN and self._probes_in_flight > 0:
            self._probes_in_flight -= 1

    def record_success(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0
        self._probes_in_flight = 0
        self.opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or \
                self.consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        if self.state != OPEN:
            self.times_opened += 1
            if self.metrics is not None:
                self.metrics.counter("breaker.opened").inc()
            if self.events is not None:
                self.events.emit(BreakerTripEvent(
                    consecutive_failures=self.consecutive_failures))
        self.state = OPEN
        self.opened_at = self._clock()
        self._probes_in_flight = 0


# -- retry backoff ------------------------------------------------------------

def backoff_ms(attempt: int, base_ms: float, max_ms: float,
               rng=None) -> float:
    """Capped exponential backoff with equal jitter.

    ``base_ms * 2**attempt`` capped at ``max_ms``, then jittered into
    ``[cap/2, cap)`` so concurrent clients desynchronize instead of
    retrying in lockstep (the classic "equal jitter" scheme).  With
    ``rng=None`` the delay is the deterministic cap — callers wanting
    jitter pass a seeded :class:`random.Random`.
    """
    capped = min(max_ms, base_ms * (2 ** attempt))
    if rng is None:
        return capped
    return capped / 2.0 + rng.random() * capped / 2.0
