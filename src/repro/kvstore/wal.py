"""Per-region-server write-ahead logs.

HBase durability in miniature: every mutation is appended to the hosting
region server's WAL before it reaches the memstore.  An append is only
*durable* once it has been synced; the gap between the two is what a
crash loses.  Three sync policies span the paper's durability/throughput
trade-off:

``SYNC``
    every append is fsynced before it is acknowledged — zero acknowledged
    writes are ever lost, at one fsync per mutation.
``PERIODIC``
    appends accumulate and one group-commit fsync covers the whole batch
    once ``periodic_bytes`` are pending — bounded loss window, amortized
    sync cost.
``ASYNC``
    appends are only synced at explicit barriers (memstore flush) — the
    fastest policy, and the whole unsynced tail is exposed to a crash.

All byte and sync counts feed :class:`~repro.kvstore.iostats.IOStats`, so
the cluster cost model can convert WAL traffic into simulated latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.kvstore.iostats import IOStats

#: Per-record framing overhead: seqno, key/value lengths, CRC.
RECORD_HEADER_BYTES = 24


class SyncPolicy(Enum):
    """When WAL appends become durable."""

    SYNC = "sync"
    PERIODIC = "periodic"
    ASYNC = "async"


@dataclass(frozen=True, slots=True)
class WALRecord:
    """One logged mutation (``value=None`` is a delete tombstone)."""

    seqno: int
    table: str
    region_id: int
    key: bytes
    value: bytes | None

    @property
    def nbytes(self) -> int:
        value_len = len(self.value) if self.value is not None else 0
        return RECORD_HEADER_BYTES + len(self.key) + value_len


#: Group-commit batch size for the PERIODIC policy.
DEFAULT_PERIODIC_BYTES = 64 * 1024


class WriteAheadLog:
    """Append-only mutation log for one region server.

    Sequence numbers are monotonic per server.  Regions checkpoint the
    log at every memstore flush; records at or below a region's
    checkpoint are persisted in SSTables and get truncated away, so
    replay after a crash touches only the unflushed suffix.
    """

    def __init__(self, server: int, stats: IOStats,
                 policy: SyncPolicy = SyncPolicy.ASYNC,
                 periodic_bytes: int = DEFAULT_PERIODIC_BYTES):
        self.server = server
        self.policy = policy
        self.periodic_bytes = periodic_bytes
        self._stats = stats
        self._records: list[WALRecord] = []
        self._floors: dict[int, int] = {}  # region_id -> flushed seqno
        self._retired: set[int] = set()    # regions gone via split/drop
        self._next_seqno = 1
        self.appended_seqno = 0
        self.synced_seqno = 0
        self._pending_bytes = 0
        self.total_bytes = 0
        self.sync_count = 0
        self.crashed = False

    # -- write path ----------------------------------------------------------
    def append(self, table: str, region_id: int, key: bytes,
               value: bytes | None) -> int:
        """Log one mutation; returns its sequence number.

        Under ``SYNC`` the record is durable when this returns; other
        policies leave it in the unsynced tail until the next sync.
        """
        record = WALRecord(self._next_seqno, table, region_id, key, value)
        self._next_seqno += 1
        self._records.append(record)
        self.appended_seqno = record.seqno
        self._pending_bytes += record.nbytes
        self.total_bytes += record.nbytes
        self._stats.record_wal_append(record.nbytes, self.server)
        if self.policy is SyncPolicy.SYNC:
            self.sync()
        elif self.policy is SyncPolicy.PERIODIC and \
                self._pending_bytes >= self.periodic_bytes:
            self.sync()
        return record.seqno

    def sync(self) -> None:
        """Group-commit: one fsync makes every pending append durable."""
        if self.synced_seqno == self.appended_seqno:
            return
        self.synced_seqno = self.appended_seqno
        self._pending_bytes = 0
        self.sync_count += 1
        self._stats.record_wal_sync()

    # -- checkpoints and truncation -------------------------------------------
    def checkpoint(self, region_id: int, seqno: int) -> None:
        """All of ``region_id``'s edits up to ``seqno`` are now in SSTables.

        A flush also acts as a sync barrier (HBase syncs the WAL before
        flushing), so the ASYNC policy's loss window resets here.
        """
        self._floors[region_id] = max(self._floors.get(region_id, 0), seqno)
        self.sync()
        self.truncate()

    def retire_region(self, region_id: int) -> None:
        """Drop a region's edits outright (split or table drop)."""
        self._retired.add(region_id)
        self._floors.pop(region_id, None)
        self.truncate()

    def truncate(self) -> None:
        """Discard records already persisted via flush (or retired)."""
        self._records = [r for r in self._records if self._is_live(r)]

    def _is_live(self, record: WALRecord) -> bool:
        if record.region_id in self._retired:
            return False
        return record.seqno > self._floors.get(record.region_id, 0)

    # -- crash path ----------------------------------------------------------
    def crash(self, lost_tail_records: int = 0) -> tuple[list[WALRecord], int]:
        """Simulate the hosting server dying.

        The unsynced tail never reached disk and is discarded;
        ``lost_tail_records`` additionally drops that many records off the
        *synced* end (torn-tail / lying-disk corruption, detected by
        recovery as CRC failures).  Returns ``(surviving, discarded)``
        where surviving records are live (not yet flushed) and replayable.
        """
        self.crashed = True
        durable = [r for r in self._records if r.seqno <= self.synced_seqno]
        discarded = len(self._records) - len(durable)
        if lost_tail_records > 0:
            discarded += min(lost_tail_records, len(durable))
            durable = durable[:len(durable) - lost_tail_records] \
                if lost_tail_records < len(durable) else []
        survivors = [r for r in durable if self._is_live(r)]
        self._records = []
        self._pending_bytes = 0
        return survivors, discarded

    # -- introspection ---------------------------------------------------------
    @property
    def unsynced_records(self) -> int:
        return sum(1 for r in self._records
                   if r.seqno > self.synced_seqno)

    @property
    def live_records(self) -> int:
        return sum(1 for r in self._records if self._is_live(r))

    @property
    def live_bytes(self) -> int:
        return sum(r.nbytes for r in self._records if self._is_live(r))

    def __len__(self) -> int:
        return len(self._records)
