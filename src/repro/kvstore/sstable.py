"""Immutable sorted runs (HFiles) with block-granular read accounting."""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right

from repro.kvstore.blockcache import BlockCache
from repro.kvstore.iostats import IOStats

_SSTABLE_IDS = itertools.count()

#: Simulated HFile block size.  HBase defaults to 64 KiB; the reproduction
#: uses 8 KiB because datasets are scaled down ~100x.
DEFAULT_BLOCK_BYTES = 8 * 1024


class SSTable:
    """One immutable sorted run of ``(key, value)`` pairs.

    Entries are grouped into fixed-size blocks.  Any scan that touches a
    block charges the whole block's bytes to the I/O statistics unless the
    block is present in the block cache — exactly the cost profile of an
    HBase region server read.
    """

    def __init__(self, entries: list[tuple[bytes, bytes | None]],
                 stats: IOStats,
                 block_bytes: int = DEFAULT_BLOCK_BYTES,
                 charge_write: bool = True):
        self.sstable_id = next(_SSTABLE_IDS)
        self._keys = [k for k, _ in entries]
        self._values = [v for _, v in entries]
        self._stats = stats
        self._block_bytes = block_bytes
        # block i covers entries [_block_starts[i], _block_starts[i+1])
        self._block_starts: list[int] = []
        self._block_sizes: list[int] = []
        self._build_blocks()
        self.total_bytes = sum(self._block_sizes)
        if charge_write:
            stats.record_disk_write(self.total_bytes)

    def _build_blocks(self) -> None:
        current = 0
        start = 0
        for i, (key, value) in enumerate(zip(self._keys, self._values)):
            entry = len(key) + (len(value) if value is not None else 0)
            if current and current + entry > self._block_bytes:
                self._block_starts.append(start)
                self._block_sizes.append(current)
                start = i
                current = 0
            current += entry
        if current or not self._block_starts:
            self._block_starts.append(start)
            self._block_sizes.append(current)

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def num_blocks(self) -> int:
        return len(self._block_sizes)

    @property
    def first_key(self) -> bytes | None:
        return self._keys[0] if self._keys else None

    @property
    def last_key(self) -> bytes | None:
        return self._keys[-1] if self._keys else None

    def _block_of(self, entry_index: int) -> int:
        return bisect_right(self._block_starts, entry_index) - 1

    def _charge_block(self, block: int, cache: BlockCache | None,
                      server: int) -> None:
        size = self._block_sizes[block]
        key = ("sst", self.sstable_id, block)
        if cache is not None and cache.contains(key):
            self._stats.record_cache_read(size)
            return
        self._stats.record_disk_read(size, server)
        if cache is not None:
            cache.admit(key, size)

    def scan(self, start: bytes, stop: bytes | None,
             cache: BlockCache | None = None, server: int = 0):
        """Yield entries with start <= key < stop, charging touched blocks;
        ``stop=None`` is unbounded above.

        The scan proceeds block-at-a-time: each block is charged once as
        the scan reaches it, then its entries stream out of a plain
        index range — no per-entry block lookup.  Charging stays lazy,
        so an early ``LIMIT`` or a cancelled consumer never pays for
        blocks the merge did not reach.
        """
        keys = self._keys
        values = self._values
        lo = bisect_left(keys, start)
        hi = len(keys) if stop is None else bisect_left(keys, stop)
        if lo >= hi:
            return
        starts = self._block_starts
        block = self._block_of(lo)
        i = lo
        while i < hi:
            block_end = starts[block + 1] if block + 1 < len(starts) \
                else len(keys)
            self._charge_block(block, cache, server)
            for j in range(i, min(hi, block_end)):
                yield keys[j], values[j]
            i = block_end
            block += 1

    def get(self, key: bytes, cache: BlockCache | None = None,
            server: int = 0) -> tuple[bool, bytes | None]:
        """Point lookup; charges the containing block on access."""
        i = bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            self._charge_block(self._block_of(i), cache, server)
            return True, self._values[i]
        return False, None

    def entries(self):
        """All entries in key order without I/O charges (compaction path
        charges reads explicitly via :meth:`total_bytes`)."""
        return zip(self._keys, self._values)
