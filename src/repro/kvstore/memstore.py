"""The in-memory write buffer of a region."""

from __future__ import annotations

from bisect import bisect_left, insort

#: Sentinel value marking a deleted key until compaction discards it.
TOMBSTONE = None


class MemStore:
    """Sorted in-memory key-value buffer.

    Writes are absorbed here and flushed to an SSTable once
    ``size_bytes`` crosses the region's flush threshold.  Deletions are
    tombstones so they can mask older SSTable entries during merges.
    """

    def __init__(self) -> None:
        self._data: dict[bytes, bytes | None] = {}
        self._sorted_keys: list[bytes] = []
        self.size_bytes = 0

    def put(self, key: bytes, value: bytes | None) -> None:
        """Insert or overwrite ``key``; ``None`` writes a tombstone."""
        if key in self._data:
            old = self._data[key]
            self.size_bytes -= len(key) + (len(old) if old is not None else 0)
        else:
            insort(self._sorted_keys, key)
        self._data[key] = value
        self.size_bytes += len(key) + (len(value) if value is not None else 0)

    def get(self, key: bytes) -> tuple[bool, bytes | None]:
        """``(found, value)``; found tombstones return ``(True, None)``."""
        if key in self._data:
            return True, self._data[key]
        return False, None

    def scan(self, start: bytes, stop: bytes | None):
        """Yield ``(key, value_or_tombstone)`` for keys in [start, stop);
        ``stop=None`` is unbounded above."""
        lo = bisect_left(self._sorted_keys, start)
        hi = len(self._sorted_keys) if stop is None \
            else bisect_left(self._sorted_keys, stop)
        for i in range(lo, hi):
            key = self._sorted_keys[i]
            yield key, self._data[key]

    def items_sorted(self):
        """All entries in key order (used by flush)."""
        for key in self._sorted_keys:
            yield key, self._data[key]

    def clear(self) -> None:
        self._data.clear()
        self._sorted_keys.clear()
        self.size_bytes = 0

    def __len__(self) -> int:
        return len(self._data)
