"""A region: one contiguous key range of a table."""

from __future__ import annotations

import heapq
import itertools

from repro.kvstore.blockcache import BlockCache
from repro.kvstore.iostats import IOStats
from repro.kvstore.memstore import MemStore
from repro.kvstore.sstable import DEFAULT_BLOCK_BYTES, SSTable
from repro.kvstore.wal import WriteAheadLog
from repro.observability.events import (
    CompactionEvent,
    DecayedRate,
    FlushEvent,
    WalCheckpointEvent,
)

_REGION_IDS = itertools.count()

#: Flush the memstore to an SSTable once it exceeds this many bytes.
DEFAULT_FLUSH_BYTES = 512 * 1024
#: Merge SSTables once a region accumulates this many runs.
DEFAULT_COMPACT_RUNS = 8


class Region:
    """Memstore + SSTable runs for the key range ``[start_key, end_key)``.

    ``end_key=None`` means unbounded above.  Each region is hosted by one
    region server (``server``); scans charge that server's I/O counters so
    the cost model can account for parallelism across servers.  When the
    store runs with a write-ahead log, the region checkpoints the WAL at
    every flush so replay after a crash only covers unflushed edits.
    """

    def __init__(self, start_key: bytes, end_key: bytes | None,
                 stats: IOStats, server: int = 0,
                 flush_bytes: int = DEFAULT_FLUSH_BYTES,
                 block_bytes: int = DEFAULT_BLOCK_BYTES,
                 wal: WriteAheadLog | None = None,
                 cache_lookup=None, *,
                 events=None, table: str = ""):
        self.region_id = next(_REGION_IDS)
        self.start_key = start_key
        self.end_key = end_key
        self.server = server
        self._stats = stats
        self._flush_bytes = flush_bytes
        self._block_bytes = block_bytes
        self.wal = wal
        #: ``server -> BlockCache | None``; lets the region evict dead
        #: SSTables' blocks when compaction/split/failover retires them.
        #: Without it (standalone regions in tests) nothing is evicted,
        #: matching the store-less construction signature.
        self.cache_lookup = cache_lookup
        #: Cluster event log (None for standalone regions in tests) and
        #: the owning table's name, for flush/compaction events.
        self.events = events
        self.table = table
        #: Highest WAL sequence number absorbed into this region.
        self.max_seqno = 0
        #: The store's :class:`~repro.replication.manager.
        #: ReplicationManager` once the region has follower replicas
        #: (set by ``attach_region``); ``None`` without replication.
        self.replication = None
        #: Simulated-clock instant until which the region is offline
        #: (set by a balancer move while it reopens on the destination).
        self.unavailable_until_ms = 0.0
        #: Simulated-clock birth instant; the balancer refuses to merge
        #: young regions (a freshly pre-split table is cold by
        #: definition — merging it away would undo the DDL's intent).
        self.created_ms = events.now_ms if events is not None else 0.0
        self.memstore = MemStore()
        self.sstables: list[SSTable] = []  # oldest first
        #: Hotness accounting for ``sys.regions``: lifetime counters plus
        #: exponentially-decayed per-second rates on the simulated clock.
        self.reads = 0
        self.writes = 0
        self.read_rate = DecayedRate()
        self.write_rate = DecayedRate()

    def _now_ms(self) -> float:
        return self.events.now_ms if self.events is not None else 0.0

    def record_read(self) -> None:
        """Count one read visit (a get, or one scan touching the region)."""
        self.reads += 1
        self.read_rate.record(self._now_ms())

    def record_write(self) -> None:
        self.writes += 1
        self.write_rate.record(self._now_ms())

    # -- routing -----------------------------------------------------------
    def owns(self, key: bytes) -> bool:
        if key < self.start_key:
            return False
        return self.end_key is None or key < self.end_key

    def overlaps(self, start: bytes, stop: bytes | None) -> bool:
        """True when [start, stop) intersects this region's key range.

        ``stop=None`` means unbounded above, mirroring ``end_key=None``.
        """
        if self.end_key is not None and start >= self.end_key:
            return False
        return stop is None or stop > self.start_key

    # -- write path ----------------------------------------------------------
    def put(self, key: bytes, value: bytes | None,
            seqno: int | None = None) -> None:
        if seqno is not None:
            self.max_seqno = max(self.max_seqno, seqno)
        self.record_write()
        self.memstore.put(key, value)
        if self.memstore.size_bytes >= self._flush_bytes:
            self.flush()

    def flush(self) -> None:
        """Persist the memstore as a new SSTable run."""
        if not len(self.memstore):
            return
        flushed_bytes = self.memstore.size_bytes
        entries = list(self.memstore.items_sorted())
        self.sstables.append(
            SSTable(entries, self._stats, self._block_bytes))
        self.memstore.clear()
        if self.events is not None:
            self.events.emit(FlushEvent(
                table=self.table, region_id=self.region_id,
                server=self.server, bytes_flushed=flushed_bytes,
                entries=len(entries)))
        if self.wal is not None:
            self.wal.checkpoint(self.region_id, self.max_seqno)
            if self.events is not None:
                self.events.emit(WalCheckpointEvent(
                    table=self.table, region_id=self.region_id,
                    server=self.server, seqno=self.max_seqno))
        if self.replication is not None:
            # Ship the flush marker down the replication stream so
            # followers drop their memstore copies and checkpoint too.
            self.replication.on_flush(self, self.max_seqno)
        if len(self.sstables) >= DEFAULT_COMPACT_RUNS:
            self.compact()

    def compact(self) -> None:
        """Merge all runs into one, dropping masked values and tombstones.

        The replaced runs' cached blocks are invalidated: left behind
        they would hold cache budget as dead weight, evicting live
        blocks and corrupting the cache-hit metrics (an HBase compaction
        likewise drops the old HFiles' blocks from the block cache).
        """
        if len(self.sstables) <= 1:
            return
        runs = len(self.sstables)
        merged: dict[bytes, bytes | None] = {}
        read_bytes = 0
        for sstable in self.sstables:  # oldest first: newer overwrite older
            read_bytes += sstable.total_bytes
            for key, value in sstable.entries():
                merged[key] = value
        self._stats.record_disk_read(read_bytes, self.server)
        live = [(k, v) for k, v in sorted(merged.items()) if v is not None]
        self.evict_cached_blocks()
        self.sstables = [SSTable(live, self._stats, self._block_bytes)]
        if self.events is not None:
            self.events.emit(CompactionEvent(
                table=self.table, region_id=self.region_id,
                server=self.server, runs=runs, read_bytes=read_bytes,
                bytes_after=self.sstables[0].total_bytes))

    def evict_cached_blocks(self, sstables: list[SSTable] | None = None,
                            server: int | None = None) -> int:
        """Invalidate cached blocks of ``sstables`` (default: all runs).

        With ``server`` the eviction targets that one server's cache;
        by default it covers every server serving this region — the
        primary plus, under replication, all follower servers, whose
        caches hold blocks of the same shared SSTables from follower
        reads.  Returns the bytes released; 0 without a cache lookup.
        """
        if self.cache_lookup is None:
            return 0
        if server is not None:
            servers = [server]
        else:
            servers = [self.server]
            if self.replication is not None:
                servers += self.replication.follower_servers(
                    self.region_id)
        released = 0
        for target in set(servers):
            cache = self.cache_lookup(target)
            if cache is None:
                continue
            for sstable in (self.sstables if sstables is None
                            else sstables):
                released += cache.invalidate_sstable(sstable.sstable_id)
        return released

    # -- read path -----------------------------------------------------------
    def get(self, key: bytes, cache: BlockCache | None,
            replica=None) -> bytes | None:
        """Newest-version lookup, optionally served by a follower.

        With ``replica`` (a :class:`~repro.replication.replica.
        FollowerReplica`) the lookup uses the follower's private
        memstore and charges I/O to the follower's server; the SSTables
        are shared storage, identical from every replica.
        """
        self.record_read()
        memstore = self.memstore if replica is None else replica.memstore
        server = self.server if replica is None else replica.server
        found, value = memstore.get(key)
        if found:
            self._stats.record_memstore_read(
                len(key) + (len(value) if value is not None else 0))
            return value
        for sstable in reversed(self.sstables):  # newest first
            found, value = sstable.get(key, cache, server)
            if found:
                return value
        return None

    #: Rows yielded between cooperative deadline checks during a scan.
    CANCEL_CHECK_ROWS = 128

    def scan(self, start: bytes, stop: bytes | None,
             cache: BlockCache | None, ctx=None, replica=None):
        """Yield live ``(key, value)`` pairs in [start, stop), key-sorted.

        ``stop=None`` means unbounded above.  The merge is streaming: a
        ``heapq.merge`` over the SSTable runs and the memstore, with
        newest-wins precedence per key, so memory stays bounded by the
        merge frontier, SSTable blocks are only charged as the merge
        reaches them (an early ``LIMIT`` or cancellation stops paying
        for blocks it never needed), and the deadline is checked every
        ``CANCEL_CHECK_ROWS`` *merged* entries — a cancelled query
        aborts mid-merge instead of after materializing the region.
        """
        lo = max(start, self.start_key)
        if stop is None:
            hi = self.end_key
        elif self.end_key is None:
            hi = stop
        else:
            hi = min(stop, self.end_key)
        if hi is not None and hi <= lo:
            return
        # Rank 0 is the memstore (newest); SSTables count up from the
        # newest run.  Streams yield (key, rank, value): merge order is
        # (key, rank), so for equal keys the newest version comes first
        # and later (older) versions are skipped.  Ranks are unique per
        # stream, so tuple comparison never reaches the values.
        memstore = self.memstore if replica is None else replica.memstore
        server = self.server if replica is None else replica.server
        newest = len(self.sstables)
        streams = [self._ranked_sstable_stream(sstable, newest - i,
                                               lo, hi, cache, server)
                   for i, sstable in enumerate(self.sstables)]
        streams.append(self._ranked_memstore_stream(lo, hi, memstore))
        previous: bytes | None = None
        processed = 0
        for key, _rank, value in heapq.merge(*streams):
            processed += 1
            if ctx is not None and \
                    processed % self.CANCEL_CHECK_ROWS == 0:
                ctx.check(f"region {self.region_id} scan")
            if key == previous:
                continue  # an older version masked by a newer write
            previous = key
            if value is not None:  # tombstones yield nothing
                yield key, value

    def scan_batches(self, start: bytes, stop: bytes | None,
                     cache: BlockCache | None, ctx=None, replica=None,
                     batch_rows: int | None = None):
        """Batched :meth:`scan`: yields lists of ``(key, value)`` pairs.

        Same streaming merge, same lazy block charging, same in-merge
        deadline checks — the entries are just handed to the consumer a
        batch at a time so it can amortize per-row work (decode,
        accounting) across the batch.
        """
        from repro.kvstore.scan import DEFAULT_BATCH_ROWS, chunk_pairs
        yield from chunk_pairs(
            self.scan(start, stop, cache, ctx, replica=replica),
            batch_rows or DEFAULT_BATCH_ROWS)

    def _ranked_sstable_stream(self, sstable: SSTable, rank: int,
                               lo: bytes, hi: bytes | None,
                               cache: BlockCache | None, server: int):
        for key, value in sstable.scan(lo, hi, cache, server):
            yield key, rank, value

    def _ranked_memstore_stream(self, lo: bytes, hi: bytes | None,
                                memstore: MemStore):
        for key, value in memstore.scan(lo, hi):
            self._stats.record_memstore_read(
                len(key) + (len(value) if value is not None else 0))
            yield key, 0, value

    # -- sizing --------------------------------------------------------------
    @property
    def disk_bytes(self) -> int:
        return sum(s.total_bytes for s in self.sstables)

    @property
    def total_bytes(self) -> int:
        return self.disk_bytes + self.memstore.size_bytes

    def all_entries(self) -> list[tuple[bytes, bytes]]:
        """Every live entry, used when the region splits."""
        merged: dict[bytes, bytes | None] = {}
        for sstable in self.sstables:
            for key, value in sstable.entries():
                merged[key] = value
        for key, value in self.memstore.items_sorted():
            merged[key] = value
        return [(k, v) for k, v in sorted(merged.items()) if v is not None]
