"""A region: one contiguous key range of a table."""

from __future__ import annotations

import itertools

from repro.kvstore.blockcache import BlockCache
from repro.kvstore.iostats import IOStats
from repro.kvstore.memstore import MemStore
from repro.kvstore.sstable import DEFAULT_BLOCK_BYTES, SSTable
from repro.kvstore.wal import WriteAheadLog

_REGION_IDS = itertools.count()

#: Flush the memstore to an SSTable once it exceeds this many bytes.
DEFAULT_FLUSH_BYTES = 512 * 1024
#: Merge SSTables once a region accumulates this many runs.
DEFAULT_COMPACT_RUNS = 8


class Region:
    """Memstore + SSTable runs for the key range ``[start_key, end_key)``.

    ``end_key=None`` means unbounded above.  Each region is hosted by one
    region server (``server``); scans charge that server's I/O counters so
    the cost model can account for parallelism across servers.  When the
    store runs with a write-ahead log, the region checkpoints the WAL at
    every flush so replay after a crash only covers unflushed edits.
    """

    def __init__(self, start_key: bytes, end_key: bytes | None,
                 stats: IOStats, server: int = 0,
                 flush_bytes: int = DEFAULT_FLUSH_BYTES,
                 block_bytes: int = DEFAULT_BLOCK_BYTES,
                 wal: WriteAheadLog | None = None):
        self.region_id = next(_REGION_IDS)
        self.start_key = start_key
        self.end_key = end_key
        self.server = server
        self._stats = stats
        self._flush_bytes = flush_bytes
        self._block_bytes = block_bytes
        self.wal = wal
        #: Highest WAL sequence number absorbed into this region.
        self.max_seqno = 0
        self.memstore = MemStore()
        self.sstables: list[SSTable] = []  # oldest first

    # -- routing -----------------------------------------------------------
    def owns(self, key: bytes) -> bool:
        if key < self.start_key:
            return False
        return self.end_key is None or key < self.end_key

    def overlaps(self, start: bytes, stop: bytes | None) -> bool:
        """True when [start, stop) intersects this region's key range.

        ``stop=None`` means unbounded above, mirroring ``end_key=None``.
        """
        if self.end_key is not None and start >= self.end_key:
            return False
        return stop is None or stop > self.start_key

    # -- write path ----------------------------------------------------------
    def put(self, key: bytes, value: bytes | None,
            seqno: int | None = None) -> None:
        if seqno is not None:
            self.max_seqno = max(self.max_seqno, seqno)
        self.memstore.put(key, value)
        if self.memstore.size_bytes >= self._flush_bytes:
            self.flush()

    def flush(self) -> None:
        """Persist the memstore as a new SSTable run."""
        if not len(self.memstore):
            return
        entries = list(self.memstore.items_sorted())
        self.sstables.append(
            SSTable(entries, self._stats, self._block_bytes))
        self.memstore.clear()
        if self.wal is not None:
            self.wal.checkpoint(self.region_id, self.max_seqno)
        if len(self.sstables) >= DEFAULT_COMPACT_RUNS:
            self.compact()

    def compact(self) -> None:
        """Merge all runs into one, dropping masked values and tombstones."""
        if len(self.sstables) <= 1:
            return
        merged: dict[bytes, bytes | None] = {}
        read_bytes = 0
        for sstable in self.sstables:  # oldest first: newer overwrite older
            read_bytes += sstable.total_bytes
            for key, value in sstable.entries():
                merged[key] = value
        self._stats.record_disk_read(read_bytes, self.server)
        live = [(k, v) for k, v in sorted(merged.items()) if v is not None]
        self.sstables = [SSTable(live, self._stats, self._block_bytes)]

    # -- read path -----------------------------------------------------------
    def get(self, key: bytes, cache: BlockCache | None) -> bytes | None:
        found, value = self.memstore.get(key)
        if found:
            self._stats.record_memstore_read(
                len(key) + (len(value) if value is not None else 0))
            return value
        for sstable in reversed(self.sstables):  # newest first
            found, value = sstable.get(key, cache, self.server)
            if found:
                return value
        return None

    #: Rows yielded between cooperative deadline checks during a scan.
    CANCEL_CHECK_ROWS = 128

    def scan(self, start: bytes, stop: bytes | None,
             cache: BlockCache | None, ctx=None):
        """Yield live ``(key, value)`` pairs in [start, stop), key-sorted.

        ``stop=None`` means unbounded above.  With a request context the
        iteration checks the statement deadline every
        ``CANCEL_CHECK_ROWS`` rows, so a cancelled query stops streaming
        promptly instead of draining the whole region.
        """
        lo = max(start, self.start_key)
        if stop is None:
            hi = self.end_key
        elif self.end_key is None:
            hi = stop
        else:
            hi = min(stop, self.end_key)
        if hi is not None and hi <= lo:
            return
        merged: dict[bytes, bytes | None] = {}
        for sstable in self.sstables:  # oldest first
            for key, value in sstable.scan(lo, hi, cache, self.server):
                merged[key] = value
        for key, value in self.memstore.scan(lo, hi):
            self._stats.record_memstore_read(
                len(key) + (len(value) if value is not None else 0))
            merged[key] = value
        yielded = 0
        for key in sorted(merged):
            value = merged[key]
            if value is not None:
                yield key, value
                yielded += 1
                if ctx is not None and \
                        yielded % self.CANCEL_CHECK_ROWS == 0:
                    ctx.check(f"region {self.region_id} scan")

    # -- sizing --------------------------------------------------------------
    @property
    def disk_bytes(self) -> int:
        return sum(s.total_bytes for s in self.sstables)

    @property
    def total_bytes(self) -> int:
        return self.disk_bytes + self.memstore.size_bytes

    def all_entries(self) -> list[tuple[bytes, bytes]]:
        """Every live entry, used when the region splits."""
        merged: dict[bytes, bytes | None] = {}
        for sstable in self.sstables:
            for key, value in sstable.entries():
                merged[key] = value
        for key, value in self.memstore.items_sorted():
            merged[key] = value
        return [(k, v) for k, v in sorted(merged.items()) if v is not None]
