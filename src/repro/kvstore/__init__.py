"""An HBase-like distributed sorted key-value store, built from scratch.

This is the storage substrate the paper runs on.  Data lives in *tables*;
each table is split into key-range *regions*; regions are hosted on
simulated *region servers*.  Writes land in a per-region memstore that
flushes to immutable sorted SSTable runs; reads merge the memstore with the
runs.  A block cache absorbs repeated reads (the paper disables its effect
by randomizing query parameters — benchmarks here do the same).

The store holds bytes in host RAM but meters every simulated disk and
network byte through :class:`~repro.kvstore.iostats.IOStats`, which the
cluster cost model converts into the simulated latencies reported by the
benchmark harness.

Durability is opt-in: construct the store with a
:class:`~repro.kvstore.wal.SyncPolicy` and every region server keeps a
write-ahead log, region-server crashes can be injected
(:meth:`KVStore.crash_server`), and failover replays the log into the
surviving servers (:mod:`repro.kvstore.recovery`).
"""

from repro.kvstore.iostats import IOStats
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.store import KVStore, KVTable
from repro.kvstore.scan import ScanSpec
from repro.kvstore.wal import SyncPolicy, WriteAheadLog
from repro.kvstore.recovery import RecoveryReport

__all__ = ["IOStats", "BlockCache", "KVStore", "KVTable", "ScanSpec",
           "SyncPolicy", "WriteAheadLog", "RecoveryReport"]
