"""LRU block cache modelling the HBase block cache."""

from __future__ import annotations

from collections import OrderedDict


class BlockCache:
    """A byte-budgeted LRU cache keyed by (table, sstable, block) ids.

    The paper's experiments deliberately defeat this cache by never
    repeating a query; it exists so the engine behaves like HBase for
    repeated workloads and so the ablation bench can quantify its effect.
    Setting ``capacity_bytes=0`` disables caching entirely.
    """

    def __init__(self, capacity_bytes: int = 64 * 1024 * 1024):
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[tuple, int] = OrderedDict()
        self._used = 0
        #: Bytes dropped by LRU pressure vs. explicit invalidation —
        #: separated so the observability layer can tell a hot cache
        #: (evictions) from compaction churn (invalidations).
        self.evicted_bytes = 0
        self.invalidated_bytes = 0

    def contains(self, key: tuple) -> bool:
        """True on cache hit; refreshes the entry's recency."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        return False

    def admit(self, key: tuple, nbytes: int) -> None:
        """Insert a block, evicting least-recently-used blocks as needed."""
        if self.capacity_bytes <= 0 or nbytes > self.capacity_bytes:
            return
        if key in self._entries:
            self._used -= self._entries.pop(key)
        while self._used + nbytes > self.capacity_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._used -= evicted
            self.evicted_bytes += evicted
        self._entries[key] = nbytes
        self._used += nbytes

    def invalidate_prefix(self, prefix: tuple) -> int:
        """Drop every block whose key starts with ``prefix``.

        Called when an SSTable dies (compaction, split, table drop,
        failover): its cached blocks would otherwise hold budget forever
        and push live blocks out.  Returns the bytes released.
        """
        stale = [k for k in self._entries
                 if k[:len(prefix)] == prefix]
        released = 0
        for key in stale:
            released += self._entries.pop(key)
        self._used -= released
        self.invalidated_bytes += released
        return released

    def invalidate_sstable(self, sstable_id: int) -> int:
        """Drop every cached block of one SSTable."""
        return self.invalidate_prefix(("sst", sstable_id))

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)
