"""Tables and the store facade."""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import (
    RegionUnavailableError,
    TableExistsError,
    TableNotFoundError,
)
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.iostats import IOStats
from repro.kvstore.recovery import RecoveryReport, recover_server
from repro.kvstore.region import DEFAULT_FLUSH_BYTES, Region
from repro.kvstore.scan import ScanSpec
from repro.kvstore.sstable import DEFAULT_BLOCK_BYTES, SSTable
from repro.kvstore.wal import (
    DEFAULT_PERIODIC_BYTES,
    SyncPolicy,
    WriteAheadLog,
)
from repro.observability.events import EventLog, SplitEvent

#: Split a region once its data exceeds this many bytes.
DEFAULT_SPLIT_BYTES = 4 * 1024 * 1024


class KVTable:
    """One sorted table, split into key-range regions across servers."""

    def __init__(self, name: str, store: "KVStore"):
        self.name = name
        self._store = store
        self._stats = store.stats
        server = store.next_server()
        first = Region(b"", None, store.stats,
                       server=server,
                       flush_bytes=store.flush_bytes,
                       block_bytes=store.block_bytes,
                       wal=store.wal_for(server),
                       cache_lookup=store.cache_for,
                       events=store.events, table=name)
        self._regions: list[Region] = [first]
        # _region_starts[i] == _regions[i].start_key, kept sorted for routing
        self._region_starts: list[bytes] = [b""]

    # -- routing -------------------------------------------------------------
    def _region_for(self, key: bytes) -> Region:
        index = bisect_right(self._region_starts, key) - 1
        return self._regions[index]

    def _regions_overlapping(self, start: bytes, stop: bytes) -> list[Region]:
        return [r for r in self._regions if r.overlaps(start, stop)]

    def regions(self) -> list[Region]:
        return list(self._regions)

    # -- API -----------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite one cell.

        With a write-ahead log configured, the mutation is logged on the
        hosting region server before it reaches the memstore; under the
        ``SYNC`` policy it is durable when this returns.
        """
        self._mutate(key, value)

    def delete(self, key: bytes) -> None:
        """Delete one cell (tombstone until compaction)."""
        self._mutate(key, None)

    def _mutate(self, key: bytes, value: bytes | None) -> None:
        self._store.tick_faults("put")
        region = self._region_for(key)
        self._store.check_available(self.name, region, "put")
        seqno = self._store.wal_append(region, self.name, key, value)
        region.put(key, value, seqno)
        if region.total_bytes >= self._store.split_bytes:
            self._split(region)

    def get(self, key: bytes, ctx=None) -> bytes | None:
        self._store.tick_faults("get")
        region = self._region_for(key)
        self._store.check_available(self.name, region, "get", ctx)
        return region.get(key, self._store.cache_for(region.server))

    def scan(self, spec: ScanSpec, ctx=None):
        """Yield live ``(key, value)`` pairs across regions, key-sorted.

        ``ctx`` (a :class:`repro.resilience.RequestContext`) makes the
        scan deadline-aware — the remaining budget is checked before
        each region and periodically within one — and enables graceful
        degradation: in partial-results mode an unavailable (or
        gray-failing) region is recorded in the context's skipped-region
        report and the scan continues over the live regions instead of
        failing all-or-nothing.
        """
        self._store.tick_faults("scan")
        self._stats.record_scan()
        stop = spec.stop
        remaining = spec.limit
        profile = getattr(ctx, "profile", None) if ctx is not None \
            else None
        for region in self._regions_overlapping(spec.start, stop):
            if ctx is not None:
                ctx.check(f"scan of {self.name!r}")
            try:
                self._store.check_available(self.name, region, "scan",
                                            ctx)
            except RegionUnavailableError as exc:
                if ctx is not None and ctx.partial_results:
                    ctx.record_skip(self.name, region.region_id,
                                    region.server, str(exc))
                    continue
                raise
            cache = self._store.cache_for(region.server)
            region.record_read()
            before = self._stats.snapshot() if profile is not None \
                else None
            region_rows = 0
            try:
                for key, value in region.scan(spec.start, stop, cache,
                                              ctx):
                    self._stats.record_result(len(key) + len(value))
                    region_rows += 1
                    yield key, value
                    if remaining is not None:
                        remaining -= 1
                        if remaining <= 0:
                            return
            finally:
                if profile is not None:
                    self._record_region_span(profile, region, before,
                                             region_rows)

    def _record_region_span(self, profile, region, before,
                            region_rows: int) -> None:
        """Merge one region visit into the trace's per-region scan span.

        An index query scans many key ranges, each visiting the same
        regions; one span per (table, region) under the current operator
        keeps the trace readable — counts accumulate across ranges.
        """
        delta = self._stats.snapshot().delta(before)
        span = None
        for child in profile.current.children:
            if child.kind == "region_scan" and \
                    child.attrs.get("table") == self.name and \
                    child.attrs.get("region") == region.region_id:
                span = child
                break
        if span is None:
            span = profile.add_event(
                f"RegionScan[{self.name} r{region.region_id} "
                f"s{region.server}]",
                kind="region_scan", table=self.name,
                region=region.region_id, server=region.server,
                rows=0, blocks_read=0, cache_hits=0, disk_bytes_read=0,
                ranges=0)
        span.attrs["rows"] += region_rows
        span.attrs["blocks_read"] += delta.blocks_read
        span.attrs["cache_hits"] += delta.cache_hits
        span.attrs["disk_bytes_read"] += delta.disk_bytes_read
        span.attrs["ranges"] += 1
        model = self._store.cost_model
        if model is not None:
            span.sim_ms += (
                model.disk_read_ms(delta.disk_bytes_read)
                + model.memory_scan_ms(delta.cache_bytes_read
                                       + delta.memstore_bytes_read))

    def flush(self) -> None:
        """Flush every region's memstore (used before size measurements)."""
        for region in self._regions:
            region.flush()

    def compact(self) -> None:
        for region in self._regions:
            region.compact()

    # -- splitting -----------------------------------------------------------
    def _split(self, region: Region) -> None:
        entries = region.all_entries()
        if len(entries) < 2:
            return
        mid = len(entries) // 2
        split_key = entries[mid][0]
        if split_key <= region.start_key:
            return
        left_server = region.server
        right_server = self._store.next_server()
        left = Region(region.start_key, split_key, self._stats,
                      server=left_server,
                      flush_bytes=self._store.flush_bytes,
                      block_bytes=self._store.block_bytes,
                      wal=self._store.wal_for(left_server),
                      cache_lookup=self._store.cache_for,
                      events=self._store.events, table=self.name)
        right = Region(split_key, region.end_key, self._stats,
                       server=right_server,
                       flush_bytes=self._store.flush_bytes,
                       block_bytes=self._store.block_bytes,
                       wal=self._store.wal_for(right_server),
                       cache_lookup=self._store.cache_for,
                       events=self._store.events, table=self.name)
        # An HBase split creates reference files rather than rewriting
        # data, so the daughters' SSTables are built without write charges.
        left.sstables = [SSTable(entries[:mid], self._stats,
                                 self._store.block_bytes,
                                 charge_write=False)]
        right.sstables = [SSTable(entries[mid:], self._stats,
                                  self._store.block_bytes,
                                  charge_write=False)]
        # Every parent entry (memstore included) is now persisted in the
        # daughters' SSTables, so the parent's log records are obsolete —
        # and so are its SSTables' cached blocks.
        region.evict_cached_blocks()
        if region.wal is not None:
            region.wal.retire_region(region.region_id)
        index = self._regions.index(region)
        self._regions[index:index + 1] = [left, right]
        self._region_starts = [r.start_key for r in self._regions]
        self._store.events.emit(SplitEvent(
            table=self.name, region_id=region.region_id,
            server=region.server, left_region_id=left.region_id,
            right_region_id=right.region_id,
            split_key=split_key.hex()))

    # -- introspection ---------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return len(self._regions)

    @property
    def disk_bytes(self) -> int:
        """Bytes persisted in SSTables (index keys plus values)."""
        return sum(r.disk_bytes for r in self._regions)

    @property
    def total_bytes(self) -> int:
        return sum(r.total_bytes for r in self._regions)

    def count(self) -> int:
        """Number of live entries (full scan, charges I/O)."""
        return sum(1 for _ in self.scan(ScanSpec.full()))

    def servers_used(self) -> set[int]:
        return {r.server for r in self._regions}


class KVStore:
    """The store facade: named tables on ``num_servers`` region servers.

    ``wal_policy=None`` (the default) runs without durability, exactly as
    before; passing a :class:`~repro.kvstore.wal.SyncPolicy` gives every
    region server a write-ahead log and enables crash recovery via
    :meth:`crash_server` / :meth:`failover`.
    """

    def __init__(self, num_servers: int = 5,
                 cache_bytes_per_server: int = 64 * 1024 * 1024,
                 flush_bytes: int = DEFAULT_FLUSH_BYTES,
                 split_bytes: int = DEFAULT_SPLIT_BYTES,
                 block_bytes: int = DEFAULT_BLOCK_BYTES,
                 wal_policy: SyncPolicy | None = None,
                 wal_periodic_bytes: int = DEFAULT_PERIODIC_BYTES,
                 cost_model=None,
                 fault_injector=None,
                 metrics=None,
                 events=None):
        self.num_servers = num_servers
        self.flush_bytes = flush_bytes
        self.split_bytes = split_bytes
        self.block_bytes = block_bytes
        self.stats = IOStats(metrics=metrics)
        #: Cluster event log; always present so regions, recovery, and
        #: the service layer can emit unconditionally.
        self.events = events if events is not None else EventLog()
        self.wal_policy = wal_policy
        self.cost_model = cost_model
        self.fault_injector = fault_injector
        self._wals: list[WriteAheadLog] | None = None
        if wal_policy is not None:
            self._wals = [WriteAheadLog(s, self.stats, wal_policy,
                                        wal_periodic_bytes)
                          for s in range(num_servers)]
        self.dead_servers: set[int] = set()
        #: Crashed servers whose failover has not run yet; their regions
        #: raise RegionUnavailableError until :meth:`failover` completes.
        self.recovering_servers: set[int] = set()
        self._pending_crashes: dict[int, tuple[list, int]] = {}
        self.recovery_log: list[RecoveryReport] = []
        self._tables: dict[str, KVTable] = {}
        self._caches = [BlockCache(cache_bytes_per_server)
                        for _ in range(num_servers)]
        self._server_cursor = 0

    def next_server(self) -> int:
        """Round-robin region placement across the alive servers."""
        for _ in range(self.num_servers):
            server = self._server_cursor
            self._server_cursor = (self._server_cursor + 1) % self.num_servers
            if server not in self.dead_servers:
                return server
        raise RuntimeError("no surviving region servers")

    @property
    def alive_servers(self) -> list[int]:
        return [s for s in range(self.num_servers)
                if s not in self.dead_servers]

    def cache_for(self, server: int) -> BlockCache:
        return self._caches[server]

    def wal_for(self, server: int) -> WriteAheadLog | None:
        if self._wals is None:
            return None
        return self._wals[server]

    def clear_caches(self) -> None:
        """Drop every block cache (benchmarks do this between queries)."""
        for cache in self._caches:
            cache.clear()

    # -- durability and fault tolerance ----------------------------------------
    def tick_faults(self, op: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.on_op(self, op)

    def wal_append(self, region: Region, table: str, key: bytes,
                   value: bytes | None) -> int | None:
        wal = self.wal_for(region.server)
        if wal is None:
            return None
        return wal.append(table, region.region_id, key, value)

    def check_available(self, table: str, region: Region,
                        op: str = "scan", ctx=None) -> None:
        """Gate one region access: crash-recovery windows and gray faults.

        A region on a crashed-but-not-failed-over server raises
        :class:`RegionUnavailableError`; an attached fault injector may
        additionally charge gray-failure latency to ``ctx`` or raise an
        intermittent per-op error for regions on gray-failing servers.
        """
        if region.server in self.recovering_servers:
            raise RegionUnavailableError(table, region.region_id,
                                         region.server)
        if self.fault_injector is not None:
            self.fault_injector.on_region_op(self, table, region, op,
                                             ctx)

    def sync_wals(self) -> None:
        """Force-sync every server's log (an explicit durability barrier)."""
        if self._wals is not None:
            for wal in self._wals:
                wal.sync()

    def crash_server(self, server: int, lost_tail_records: int = 0,
                     defer_failover: bool = False) -> RecoveryReport | None:
        """Kill one region server.

        Its block cache is invalidated, its memstores are gone, and its
        WAL loses the unsynced tail (plus ``lost_tail_records`` synced
        records when simulating torn-tail/delayed-write corruption).
        Unless ``defer_failover`` is set, regions are immediately failed
        over to the survivors; otherwise they stay unavailable — raising
        :class:`RegionUnavailableError` — until :meth:`failover` runs.
        """
        if not 0 <= server < self.num_servers:
            raise ValueError(f"no such server: {server}")
        if server in self.dead_servers:
            raise ValueError(f"server {server} is already dead")
        if len(self.alive_servers) <= 1:
            raise ValueError("cannot crash the last surviving server")
        self.dead_servers.add(server)
        self.recovering_servers.add(server)
        self._caches[server].clear()
        records: list = []
        discarded = 0
        wal = self.wal_for(server)
        if wal is not None:
            records, discarded = wal.crash(lost_tail_records)
        else:
            # No WAL: every unflushed edit on the server is simply gone.
            for table in self._tables.values():
                for region in table._regions:
                    if region.server == server:
                        discarded += len(region.memstore)
        self._pending_crashes[server] = (records, discarded)
        if defer_failover:
            return None
        return self.failover(server)

    def failover(self, server: int) -> RecoveryReport:
        """Reassign a dead server's regions and replay its WAL."""
        if server not in self._pending_crashes:
            raise ValueError(f"server {server} has no pending recovery")
        records, discarded = self._pending_crashes.pop(server)
        report = recover_server(self, server, records, discarded,
                                model=self.cost_model)
        self.recovering_servers.discard(server)
        self.recovery_log.append(report)
        return report

    @property
    def last_recovery(self) -> RecoveryReport | None:
        return self.recovery_log[-1] if self.recovery_log else None

    # -- table management ------------------------------------------------------
    def create_table(self, name: str) -> KVTable:
        if name in self._tables:
            raise TableExistsError(name)
        table = KVTable(name, self)
        self._tables[name] = table
        return table

    def table(self, name: str) -> KVTable:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError(name)
        for region in self._tables[name]._regions:
            region.evict_cached_blocks()
            if region.wal is not None:
                region.wal.retire_region(region.region_id)
        del self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def tables(self) -> list[KVTable]:
        return list(self._tables.values())
