"""Tables and the store facade."""

from __future__ import annotations

import heapq
import zlib
from bisect import bisect_right

from repro.errors import (
    RegionUnavailableError,
    TableExistsError,
    TableNotFoundError,
)
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.iostats import IOStats
from repro.kvstore.recovery import RecoveryReport, recover_server
from repro.kvstore.region import DEFAULT_FLUSH_BYTES, Region
from repro.kvstore.scan import DEFAULT_BATCH_ROWS, ScanSpec, chunk_pairs
from repro.kvstore.sstable import DEFAULT_BLOCK_BYTES, SSTable
from repro.kvstore.wal import (
    DEFAULT_PERIODIC_BYTES,
    SyncPolicy,
    WriteAheadLog,
)
from repro.observability.events import (
    EventLog,
    RegionMergedEvent,
    RegionMovedEvent,
    SplitEvent,
)

#: Split a region once its data exceeds this many bytes.
DEFAULT_SPLIT_BYTES = 4 * 1024 * 1024

#: Upper bound on pre-split regions and salt buckets (one key byte).
MAX_BUCKETS = 255


def salt_of(key: bytes, buckets: int) -> int:
    """Deterministic salt bucket for a key (HBase-style key salting)."""
    return zlib.crc32(key) % buckets


class KVTable:
    """One sorted table, split into key-range regions across servers.

    ``presplit=N`` creates the table with ``N`` regions up front
    (HBase pre-splitting), spreading a write burst across servers from
    the first put instead of waiting for size-triggered splits.

    ``salt_buckets=K`` (>= 2) prepends a one-byte deterministic salt —
    ``crc32(key) % K`` — to every stored key, so even a monotonic or
    SFC-clustered key stream spreads over K contiguous key spaces.
    Point operations recompute the salt; range scans fan out one scan
    per bucket and merge them back into logical key order (the salted
    scan fan-out cost is the classic salting trade-off).  With salting,
    pre-splitting places region boundaries on bucket boundaries.
    """

    def __init__(self, name: str, store: "KVStore", presplit: int = 0,
                 salt_buckets: int = 0):
        if presplit < 0 or presplit > MAX_BUCKETS:
            raise ValueError(f"presplit must be in [0, {MAX_BUCKETS}], "
                             f"got {presplit}")
        if salt_buckets < 0 or salt_buckets > MAX_BUCKETS:
            raise ValueError(f"salt_buckets must be in [0, {MAX_BUCKETS}]"
                             f", got {salt_buckets}")
        self.name = name
        self._store = store
        self._stats = store.stats
        self.salt_buckets = salt_buckets if salt_buckets >= 2 else 0
        self._regions: list[Region] = [
            self._new_region(start, end)
            for start, end in self._initial_ranges(presplit)]
        # _region_starts[i] == _regions[i].start_key, kept sorted for routing
        self._region_starts: list[bytes] = [r.start_key
                                            for r in self._regions]

    def _new_region(self, start: bytes, end: bytes | None) -> Region:
        server = self._store.next_server()
        region = Region(start, end, self._stats,
                        server=server,
                        flush_bytes=self._store.flush_bytes,
                        block_bytes=self._store.block_bytes,
                        wal=self._store.wal_for(server),
                        cache_lookup=self._store.cache_for,
                        events=self._store.events, table=self.name)
        self._store.region_created(region)
        return region

    def _initial_ranges(self, presplit: int) -> list[tuple[bytes,
                                                           bytes | None]]:
        """Key ranges for the initial regions (one without pre-split)."""
        starts = [b""]
        if presplit > 1:
            if self.salt_buckets:
                # Boundaries on salt-bucket edges so every bucket lives
                # entirely inside one region.
                bounds = {self.salt_buckets * i // presplit
                          for i in range(1, presplit)}
            else:
                bounds = {256 * i // presplit for i in range(1, presplit)}
            starts += [bytes([b]) for b in sorted(bounds) if 0 < b < 256]
        ends: list[bytes | None] = starts[1:] + [None]
        return list(zip(starts, ends))

    # -- key salting ---------------------------------------------------------
    def _salted(self, key: bytes) -> bytes:
        if not self.salt_buckets:
            return key
        return bytes([salt_of(key, self.salt_buckets)]) + key

    # -- routing -------------------------------------------------------------
    def _region_for(self, key: bytes) -> Region:
        index = bisect_right(self._region_starts, key) - 1
        return self._regions[index]

    def _regions_overlapping(self, start: bytes, stop: bytes) -> list[Region]:
        return [r for r in self._regions if r.overlaps(start, stop)]

    def regions(self) -> list[Region]:
        return list(self._regions)

    # -- API -----------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite one cell.

        With a write-ahead log configured, the mutation is logged on the
        hosting region server before it reaches the memstore; under the
        ``SYNC`` policy it is durable when this returns.
        """
        self._mutate(key, value)

    def delete(self, key: bytes) -> None:
        """Delete one cell (tombstone until compaction)."""
        self._mutate(key, None)

    def _mutate(self, key: bytes, value: bytes | None) -> None:
        self._store.tick_faults("put")
        key = self._salted(key)
        region = self._region_for(key)
        self._store.check_available(self.name, region, "put")
        seqno = self._store.wal_append(region, self.name, key, value)
        # Replicate between the primary WAL append and the memstore
        # apply: a failed SYNC quorum raises here, so the rejected
        # write is at worst a ghost record in the primary log
        # (indeterminate, like any timed-out distributed commit).
        self._store.replicate_append(region, self.name, key, value,
                                     seqno)
        region.put(key, value, seqno)
        if region.total_bytes >= self._store.split_bytes:
            self._split(region)

    def get(self, key: bytes, ctx=None) -> bytes | None:
        self._store.tick_faults("get")
        key = self._salted(key)
        region = self._region_for(key)
        replica = self._store.route_read(self.name, region, "get", ctx)
        server = region.server if replica is None else replica.server
        return region.get(key, self._store.cache_for(server),
                          replica=replica)

    def scan(self, spec: ScanSpec, ctx=None):
        """Yield live ``(key, value)`` pairs across regions, key-sorted.

        ``ctx`` (a :class:`repro.resilience.RequestContext`) makes the
        scan deadline-aware — the remaining budget is checked before
        each region and periodically within one — and enables graceful
        degradation: in partial-results mode an unavailable (or
        gray-failing) region is recorded in the context's skipped-region
        report and the scan continues over the live regions instead of
        failing all-or-nothing.
        """
        self._store.tick_faults("scan")
        self._stats.record_scan()
        if self.salt_buckets:
            stream = self._scan_salted(spec, ctx)
        else:
            stream = self._scan_span(spec.start, spec.stop, ctx)
        remaining = spec.limit
        for key, value in stream:
            yield key, value
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return

    def scan_batches(self, spec: ScanSpec, ctx=None,
                     batch_rows: int | None = None):
        """Batched :meth:`scan`: yields lists of ``(key, value)`` pairs.

        Identical routing, deadline, partial-results, and accounting
        behavior; entries arrive a batch at a time so consumers (the
        table layer's columnar decode) amortize per-row work.  Batches
        never span regions, so per-region span accounting stays exact.
        """
        self._store.tick_faults("scan")
        self._stats.record_scan()
        batch_rows = batch_rows or DEFAULT_BATCH_ROWS
        if self.salt_buckets:
            stream = chunk_pairs(self._scan_salted(spec, ctx), batch_rows)
        else:
            stream = self._scan_span_batches(spec.start, spec.stop, ctx,
                                             batch_rows)
        remaining = spec.limit
        for batch in stream:
            if remaining is not None and len(batch) >= remaining:
                yield batch[:remaining]
                return
            if remaining is not None:
                remaining -= len(batch)
            yield batch

    def _scan_salted(self, spec: ScanSpec, ctx=None):
        """Fan the logical range out over every salt bucket and merge.

        Each bucket holds a contiguous salted copy of the logical key
        space, so one per-bucket scan of ``salt + [start, stop)`` with
        the salt byte stripped yields the bucket's rows in logical
        order; a ``heapq.merge`` over the buckets restores the global
        order.  A logical key lives in exactly one bucket, so merge
        comparisons never tie (and never reach the values).
        """
        stop = spec.stop

        def bucket_stream(bucket: int):
            prefix = bytes([bucket])
            if stop is None:
                # The bucket's whole key space: everything under the
                # salt byte (buckets are < 255, so prefix+1 exists).
                bucket_stop = bytes([bucket + 1])
            else:
                bucket_stop = prefix + stop
            for key, value in self._scan_span(prefix + spec.start,
                                              bucket_stop, ctx):
                yield key[1:], value

        yield from heapq.merge(*(bucket_stream(b)
                                 for b in range(self.salt_buckets)))

    def _scan_span(self, start: bytes, stop: bytes | None, ctx=None):
        """Yield live ``(key, value)`` across regions of one key span."""
        profile = getattr(ctx, "profile", None) if ctx is not None \
            else None
        for region in self._regions_overlapping(start, stop):
            if ctx is not None:
                ctx.check(f"scan of {self.name!r}")
            try:
                replica = self._store.route_read(self.name, region,
                                                 "scan", ctx)
            except RegionUnavailableError as exc:
                if ctx is not None and ctx.partial_results:
                    ctx.record_skip(self.name, region.region_id,
                                    region.server, str(exc))
                    continue
                raise
            server = region.server if replica is None \
                else replica.server
            cache = self._store.cache_for(server)
            region.record_read()
            before = self._stats.snapshot() if profile is not None \
                else None
            region_rows = 0
            try:
                for key, value in region.scan(start, stop, cache, ctx,
                                              replica=replica):
                    self._stats.record_result(len(key) + len(value))
                    region_rows += 1
                    yield key, value
            finally:
                if profile is not None:
                    self._record_region_span(profile, region, before,
                                             region_rows)

    def _scan_span_batches(self, start: bytes, stop: bytes | None,
                           ctx=None,
                           batch_rows: int = DEFAULT_BATCH_ROWS):
        """Batched :meth:`_scan_span`: lists of pairs, region by region.

        Result-byte accounting is summed once per batch instead of once
        per row — the totals are identical, the bookkeeping is not on
        the per-record hot path anymore.
        """
        profile = getattr(ctx, "profile", None) if ctx is not None \
            else None
        for region in self._regions_overlapping(start, stop):
            if ctx is not None:
                ctx.check(f"scan of {self.name!r}")
            try:
                replica = self._store.route_read(self.name, region,
                                                 "scan", ctx)
            except RegionUnavailableError as exc:
                if ctx is not None and ctx.partial_results:
                    ctx.record_skip(self.name, region.region_id,
                                    region.server, str(exc))
                    continue
                raise
            server = region.server if replica is None \
                else replica.server
            cache = self._store.cache_for(server)
            region.record_read()
            before = self._stats.snapshot() if profile is not None \
                else None
            region_rows = 0
            try:
                for batch in region.scan_batches(start, stop, cache, ctx,
                                                 replica=replica,
                                                 batch_rows=batch_rows):
                    self._stats.record_result(
                        sum(len(key) + len(value)
                            for key, value in batch))
                    region_rows += len(batch)
                    yield batch
            finally:
                if profile is not None:
                    self._record_region_span(profile, region, before,
                                             region_rows)

    def _record_region_span(self, profile, region, before,
                            region_rows: int) -> None:
        """Merge one region visit into the trace's per-region scan span.

        An index query scans many key ranges, each visiting the same
        regions; one span per (table, region) under the current operator
        keeps the trace readable — counts accumulate across ranges.
        """
        delta = self._stats.snapshot().delta(before)
        span = None
        for child in profile.current.children:
            if child.kind == "region_scan" and \
                    child.attrs.get("table") == self.name and \
                    child.attrs.get("region") == region.region_id:
                span = child
                break
        if span is None:
            span = profile.add_event(
                f"RegionScan[{self.name} r{region.region_id} "
                f"s{region.server}]",
                kind="region_scan", table=self.name,
                region=region.region_id, server=region.server,
                rows=0, blocks_read=0, cache_hits=0, disk_bytes_read=0,
                ranges=0)
        span.attrs["rows"] += region_rows
        span.attrs["blocks_read"] += delta.blocks_read
        span.attrs["cache_hits"] += delta.cache_hits
        span.attrs["disk_bytes_read"] += delta.disk_bytes_read
        span.attrs["ranges"] += 1
        model = self._store.cost_model
        if model is not None:
            span.sim_ms += (
                model.disk_read_ms(delta.disk_bytes_read)
                + model.memory_scan_ms(delta.cache_bytes_read
                                       + delta.memstore_bytes_read))

    def flush(self) -> None:
        """Flush every region's memstore (used before size measurements)."""
        for region in self._regions:
            region.flush()

    def compact(self) -> None:
        for region in self._regions:
            region.compact()

    # -- splitting -----------------------------------------------------------
    def _split(self, region: Region) -> None:
        entries = region.all_entries()
        if len(entries) < 2:
            return
        mid = len(entries) // 2
        split_key = entries[mid][0]
        if split_key <= region.start_key:
            return
        left_server = region.server
        right_server = self._store.next_server()
        left = Region(region.start_key, split_key, self._stats,
                      server=left_server,
                      flush_bytes=self._store.flush_bytes,
                      block_bytes=self._store.block_bytes,
                      wal=self._store.wal_for(left_server),
                      cache_lookup=self._store.cache_for,
                      events=self._store.events, table=self.name)
        right = Region(split_key, region.end_key, self._stats,
                       server=right_server,
                       flush_bytes=self._store.flush_bytes,
                       block_bytes=self._store.block_bytes,
                       wal=self._store.wal_for(right_server),
                       cache_lookup=self._store.cache_for,
                       events=self._store.events, table=self.name)
        # An HBase split creates reference files rather than rewriting
        # data, so the daughters' SSTables are built without write charges.
        left.sstables = [SSTable(entries[:mid], self._stats,
                                 self._store.block_bytes,
                                 charge_write=False)]
        right.sstables = [SSTable(entries[mid:], self._stats,
                                  self._store.block_bytes,
                                  charge_write=False)]
        # Every parent entry (memstore included) is now persisted in the
        # daughters' SSTables, so the parent's log records are obsolete —
        # and so are its SSTables' cached blocks (on every replica
        # server).
        region.evict_cached_blocks()
        if region.wal is not None:
            region.wal.retire_region(region.region_id)
        self._store.region_retired(region)
        self._store.region_created(left)
        self._store.region_created(right)
        index = self._regions.index(region)
        self._regions[index:index + 1] = [left, right]
        self._region_starts = [r.start_key for r in self._regions]
        self._store.events.emit(SplitEvent(
            table=self.name, region_id=region.region_id,
            server=region.server, left_region_id=left.region_id,
            right_region_id=right.region_id,
            split_key=split_key.hex()))

    def split_region(self, region: Region) -> bool:
        """Split one region now (the balancer's load-triggered split).

        Same mechanics as a size-triggered split; returns False when the
        region is too small or too narrow to split.
        """
        if region not in self._regions:
            raise ValueError(f"region {region.region_id} is not part of "
                             f"table {self.name!r}")
        before = len(self._regions)
        self._split(region)
        return len(self._regions) > before

    # -- merging -------------------------------------------------------------
    def merge_regions(self, left: Region, right: Region) -> Region:
        """Merge two adjacent regions into one hosted on ``left``'s server.

        The HBase ``merge_region`` analogue for cold neighbours: both
        parents' live entries land in one reference SSTable (no write
        charge, like a split), both parents' cached blocks are dropped,
        and both parents' WAL records are retired — every entry is
        persisted in the merged region's SSTable, so nothing needs
        replay on their behalf.
        """
        index = self._regions.index(left)
        if index + 1 >= len(self._regions) \
                or self._regions[index + 1] is not right:
            raise ValueError(
                f"regions {left.region_id} and {right.region_id} are "
                f"not adjacent in table {self.name!r}")
        entries = left.all_entries() + right.all_entries()
        merged = Region(left.start_key, right.end_key, self._stats,
                        server=left.server,
                        flush_bytes=self._store.flush_bytes,
                        block_bytes=self._store.block_bytes,
                        wal=self._store.wal_for(left.server),
                        cache_lookup=self._store.cache_for,
                        events=self._store.events, table=self.name)
        if entries:
            merged.sstables = [SSTable(entries, self._stats,
                                       self._store.block_bytes,
                                       charge_write=False)]
        for parent in (left, right):
            parent.evict_cached_blocks()
            if parent.wal is not None:
                parent.wal.retire_region(parent.region_id)
            self._store.region_retired(parent)
        self._store.region_created(merged)
        self._regions[index:index + 2] = [merged]
        self._region_starts = [r.start_key for r in self._regions]
        self._store.events.emit(RegionMergedEvent(
            table=self.name, region_id=merged.region_id,
            server=merged.server, left_region_id=left.region_id,
            right_region_id=right.region_id,
            bytes_after=merged.disk_bytes))
        return merged

    # -- introspection ---------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return len(self._regions)

    @property
    def disk_bytes(self) -> int:
        """Bytes persisted in SSTables (index keys plus values)."""
        return sum(r.disk_bytes for r in self._regions)

    @property
    def total_bytes(self) -> int:
        return sum(r.total_bytes for r in self._regions)

    def count(self) -> int:
        """Number of live entries (full scan, charges I/O)."""
        return sum(1 for _ in self.scan(ScanSpec.full()))

    def servers_used(self) -> set[int]:
        return {r.server for r in self._regions}


class KVStore:
    """The store facade: named tables on ``num_servers`` region servers.

    ``wal_policy=None`` (the default) runs without durability, exactly as
    before; passing a :class:`~repro.kvstore.wal.SyncPolicy` gives every
    region server a write-ahead log and enables crash recovery via
    :meth:`crash_server` / :meth:`failover`.
    """

    def __init__(self, num_servers: int = 5,
                 cache_bytes_per_server: int = 64 * 1024 * 1024,
                 flush_bytes: int = DEFAULT_FLUSH_BYTES,
                 split_bytes: int = DEFAULT_SPLIT_BYTES,
                 block_bytes: int = DEFAULT_BLOCK_BYTES,
                 wal_policy: SyncPolicy | None = None,
                 wal_periodic_bytes: int = DEFAULT_PERIODIC_BYTES,
                 cost_model=None,
                 fault_injector=None,
                 metrics=None,
                 events=None,
                 replication_factor: int = 1,
                 read_mode="primary"):
        self.num_servers = num_servers
        self.flush_bytes = flush_bytes
        self.split_bytes = split_bytes
        self.block_bytes = block_bytes
        self.stats = IOStats(metrics=metrics)
        #: Cluster event log; always present so regions, recovery, and
        #: the service layer can emit unconditionally.
        self.events = events if events is not None else EventLog()
        self.wal_policy = wal_policy
        self.cost_model = cost_model
        self.fault_injector = fault_injector
        self._wals: list[WriteAheadLog] | None = None
        if wal_policy is not None:
            self._wals = [WriteAheadLog(s, self.stats, wal_policy,
                                        wal_periodic_bytes)
                          for s in range(num_servers)]
        self.dead_servers: set[int] = set()
        #: Crashed servers whose failover has not run yet; their regions
        #: raise RegionUnavailableError until :meth:`failover` completes.
        self.recovering_servers: set[int] = set()
        self._pending_crashes: dict[int, tuple[list, int]] = {}
        self.recovery_log: list[RecoveryReport] = []
        self._tables: dict[str, KVTable] = {}
        self._caches = [BlockCache(cache_bytes_per_server)
                        for _ in range(num_servers)]
        self._server_cursor = 0
        #: :class:`~repro.replication.manager.ReplicationManager` once
        #: region replication is on; ``None`` runs single-copy.
        self.replication = None
        if replication_factor > 1:
            self.enable_replication(replication_factor, read_mode)

    def next_server(self) -> int:
        """Round-robin region placement across the placeable servers.

        Recovering servers are skipped too: a region placed on a
        crashed-but-not-yet-failed-over server would be born
        unavailable (every access raises RegionUnavailableError until
        its failover completes, which never covers the new region).
        """
        for _ in range(self.num_servers):
            server = self._server_cursor
            self._server_cursor = (self._server_cursor + 1) % self.num_servers
            if server not in self.dead_servers \
                    and server not in self.recovering_servers:
                return server
        raise RuntimeError("no surviving region servers")

    @property
    def alive_servers(self) -> list[int]:
        return [s for s in range(self.num_servers)
                if s not in self.dead_servers]

    @property
    def placeable_servers(self) -> list[int]:
        """Servers that can host regions right now (alive, recovered)."""
        return [s for s in self.alive_servers
                if s not in self.recovering_servers]

    def cache_for(self, server: int) -> BlockCache:
        return self._caches[server]

    def wal_for(self, server: int) -> WriteAheadLog | None:
        if self._wals is None:
            return None
        return self._wals[server]

    def clear_caches(self) -> None:
        """Drop every block cache (benchmarks do this between queries)."""
        for cache in self._caches:
            cache.clear()

    # -- replication -----------------------------------------------------------
    def enable_replication(self, factor: int = 3, read_mode="primary",
                           **kwargs) -> "object":
        """Turn on region replication (requires a WAL policy).

        Every existing and future region gets ``factor - 1`` follower
        replicas on distinct servers; see
        :class:`~repro.replication.manager.ReplicationManager`.
        ``read_mode`` sets the default serving mode for reads
        (``primary`` / ``follower`` / ``hedged``); ``kwargs`` pass
        through to the manager (``interval_ms``, ``hedge_ms``, ...).
        """
        from repro.replication.manager import ReplicationManager
        if self.replication is not None:
            return self.replication
        self.replication = ReplicationManager(self, factor=factor,
                                              read_mode=read_mode,
                                              **kwargs)
        for table in self.tables():
            for region in table.regions():
                self.replication.attach_region(region)
        return self.replication

    def region_created(self, region: Region) -> None:
        """A region came into existence (create/presplit/split/merge)."""
        if self.replication is not None:
            self.replication.attach_region(region)

    def region_retired(self, region: Region) -> None:
        """A region ceased to exist (split parent, merge parent, drop)."""
        if self.replication is not None:
            self.replication.detach_region(region)

    def replicate_append(self, region: Region, table: str, key: bytes,
                         value: bytes | None,
                         seqno: int | None) -> None:
        """Ship one primary WAL append to the region's followers."""
        if self.replication is not None:
            self.replication.on_append(region, table, key, value, seqno)

    def route_read(self, table: str, region: Region, op: str,
                   ctx=None):
        """Pick the replica serving one read; ``None`` means primary.

        Without replication this is exactly :meth:`check_available`;
        with it, follower/hedged modes may return a
        :class:`~repro.replication.replica.FollowerReplica` to serve
        from instead.
        """
        if self.replication is None:
            self.check_available(table, region, op, ctx)
            return None
        return self.replication.route_read(table, region, op, ctx)

    def replica_servers(self, region: Region) -> set[int]:
        """Servers hosting any replica of ``region`` (primary included).

        The balancer planner consults this for anti-affinity: moving a
        primary onto a follower's server would co-locate two copies.
        """
        servers = {region.server}
        if self.replication is not None:
            servers.update(
                self.replication.follower_servers(region.region_id))
        return servers

    # -- durability and fault tolerance ----------------------------------------
    def tick_faults(self, op: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.on_op(self, op)

    def wal_append(self, region: Region, table: str, key: bytes,
                   value: bytes | None) -> int | None:
        wal = self.wal_for(region.server)
        if wal is None:
            return None
        return wal.append(table, region.region_id, key, value)

    def check_available(self, table: str, region: Region,
                        op: str = "scan", ctx=None) -> None:
        """Gate one region access: crash-recovery windows and gray faults.

        A region on a crashed-but-not-failed-over server raises
        :class:`RegionUnavailableError`; an attached fault injector may
        additionally charge gray-failure latency to ``ctx`` or raise an
        intermittent per-op error for regions on gray-failing servers.
        """
        if region.server in self.recovering_servers:
            raise RegionUnavailableError(table, region.region_id,
                                         region.server)
        if self.events.now_ms < region.unavailable_until_ms:
            # Mid-move: offline while it reopens on the destination.
            raise RegionUnavailableError(table, region.region_id,
                                         region.server)
        if self.fault_injector is not None:
            self.fault_injector.on_region_op(self, table, region, op,
                                             ctx)

    def sync_wals(self) -> None:
        """Force-sync every server's log (an explicit durability barrier)."""
        if self._wals is not None:
            for wal in self._wals:
                wal.sync()

    def crash_server(self, server: int, lost_tail_records: int = 0,
                     defer_failover: bool = False) -> RecoveryReport | None:
        """Kill one region server.

        Its block cache is invalidated, its memstores are gone, and its
        WAL loses the unsynced tail (plus ``lost_tail_records`` synced
        records when simulating torn-tail/delayed-write corruption).
        Unless ``defer_failover`` is set, regions are immediately failed
        over to the survivors; otherwise they stay unavailable — raising
        :class:`RegionUnavailableError` — until :meth:`failover` runs.
        """
        if not 0 <= server < self.num_servers:
            raise ValueError(f"no such server: {server}")
        if server in self.dead_servers:
            raise ValueError(f"server {server} is already dead")
        if len(self.alive_servers) <= 1:
            raise ValueError("cannot crash the last surviving server")
        self.dead_servers.add(server)
        self.recovering_servers.add(server)
        self._caches[server].clear()
        records: list = []
        discarded = 0
        wal = self.wal_for(server)
        if wal is not None:
            records, discarded = wal.crash(lost_tail_records)
        else:
            # No WAL: every unflushed edit on the server is simply gone.
            for table in self._tables.values():
                for region in table._regions:
                    if region.server == server:
                        discarded += len(region.memstore)
        self._pending_crashes[server] = (records, discarded)
        if defer_failover:
            return None
        return self.failover(server)

    def failover(self, server: int) -> RecoveryReport:
        """Recover a dead server's regions.

        Without replication every region is reassigned and its WAL
        replayed; with replication, regions whose primary lived here
        are *promoted* onto their most-caught-up follower and only the
        promotion catch-up is replayed.  Either way the dead server's
        block cache is invalidated eagerly (idempotent after
        :meth:`crash_server`'s wholesale clear) so no stale entries of
        moved-away regions outlive the failover.
        """
        if server not in self._pending_crashes:
            raise ValueError(f"server {server} has no pending recovery")
        records, discarded = self._pending_crashes.pop(server)
        self._caches[server].clear()
        if self.replication is not None:
            report = self.replication.failover(server, records,
                                               discarded)
        else:
            report = recover_server(self, server, records, discarded,
                                    model=self.cost_model)
        self.recovering_servers.discard(server)
        self.recovery_log.append(report)
        return report

    @property
    def last_recovery(self) -> RecoveryReport | None:
        return self.recovery_log[-1] if self.recovery_log else None

    # -- elastic placement ------------------------------------------------------
    def move_region(self, region: Region, dest: int) -> float:
        """Move one region to ``dest`` (the balancer's act primitive).

        HBase ``move_region`` semantics in miniature: the memstore is
        flushed so the source WAL can be checkpointed up to the
        region's high watermark (its records are all persisted — a
        later crash of the source replays nothing for it), the source
        server's cached blocks for the region are invalidated, and the
        region reopens cold on ``dest`` with that server's WAL and a
        reset seqno watermark (sequence numbers are per-server; the
        same rule failover applies).  The region is unavailable for the
        simulated duration of the move — reads/writes raise
        :class:`RegionUnavailableError` until the clock passes it.
        Returns the simulated move time in ms.
        """
        source = region.server
        if dest == source:
            raise ValueError(f"region {region.region_id} is already on "
                             f"server {dest}")
        if not 0 <= dest < self.num_servers:
            raise ValueError(f"no such server: {dest}")
        if dest in self.dead_servers or dest in self.recovering_servers:
            raise ValueError(f"server {dest} cannot host regions now")
        before = self.stats.snapshot()
        region.flush()
        if region.wal is not None:
            # The flush checkpointed up to max_seqno; make it explicit
            # for the no-new-edits case so the source log holds nothing
            # of this region either way.
            region.wal.checkpoint(region.region_id, region.max_seqno)
        flushed = self.stats.snapshot().delta(before)
        # Source cache only: follower servers (if any) keep serving the
        # same shared SSTables, so their cached blocks stay valid.
        region.evict_cached_blocks(server=source)
        region.server = dest
        region.wal = self.wal_for(dest)
        region.max_seqno = 0
        region.evict_cached_blocks(server=dest)  # destination opens cold
        if self.replication is not None:
            self.replication.on_primary_moved(region, source, dest)
        model = self.cost_model
        if model is None:
            from repro.cluster.simclock import CostModel
            model = CostModel()
        move_ms = (model.region_reopen_ms
                   + model.disk_write_ms(flushed.disk_bytes_written))
        region.unavailable_until_ms = self.events.now_ms + move_ms
        self.events.emit(RegionMovedEvent(
            table=region.table, region_id=region.region_id,
            server=dest, from_server=source,
            bytes_moved=region.disk_bytes, move_ms=round(move_ms, 3)))
        return move_ms

    # -- table management ------------------------------------------------------
    def create_table(self, name: str, presplit: int = 0,
                     salt_buckets: int = 0) -> KVTable:
        if name in self._tables:
            raise TableExistsError(name)
        table = KVTable(name, self, presplit=presplit,
                        salt_buckets=salt_buckets)
        self._tables[name] = table
        return table

    def table(self, name: str) -> KVTable:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError(name)
        for region in self._tables[name]._regions:
            region.evict_cached_blocks()
            if region.wal is not None:
                region.wal.retire_region(region.region_id)
            self.region_retired(region)
        del self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def tables(self) -> list[KVTable]:
        return list(self._tables.values())
