"""Tables and the store facade."""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import TableExistsError, TableNotFoundError
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.iostats import IOStats
from repro.kvstore.region import DEFAULT_FLUSH_BYTES, Region
from repro.kvstore.scan import ScanSpec
from repro.kvstore.sstable import DEFAULT_BLOCK_BYTES, SSTable

#: Split a region once its data exceeds this many bytes.
DEFAULT_SPLIT_BYTES = 4 * 1024 * 1024


class KVTable:
    """One sorted table, split into key-range regions across servers."""

    def __init__(self, name: str, store: "KVStore"):
        self.name = name
        self._store = store
        self._stats = store.stats
        first = Region(b"", None, store.stats,
                       server=store.next_server(),
                       flush_bytes=store.flush_bytes,
                       block_bytes=store.block_bytes)
        self._regions: list[Region] = [first]
        # _region_starts[i] == _regions[i].start_key, kept sorted for routing
        self._region_starts: list[bytes] = [b""]

    # -- routing -------------------------------------------------------------
    def _region_for(self, key: bytes) -> Region:
        index = bisect_right(self._region_starts, key) - 1
        return self._regions[index]

    def _regions_overlapping(self, start: bytes, end: bytes) -> list[Region]:
        return [r for r in self._regions if r.overlaps(start, end)]

    # -- API -----------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite one cell."""
        region = self._region_for(key)
        region.put(key, value)
        if region.total_bytes >= self._store.split_bytes:
            self._split(region)

    def delete(self, key: bytes) -> None:
        """Delete one cell (tombstone until compaction)."""
        self._region_for(key).put(key, None)

    def get(self, key: bytes) -> bytes | None:
        region = self._region_for(key)
        return region.get(key, self._store.cache_for(region.server))

    def scan(self, spec: ScanSpec):
        """Yield live ``(key, value)`` pairs across regions, key-sorted."""
        self._stats.record_scan()
        remaining = spec.limit
        for region in self._regions_overlapping(spec.start, spec.end):
            cache = self._store.cache_for(region.server)
            for key, value in region.scan(spec.start, spec.end, cache):
                self._stats.record_result(len(key) + len(value))
                yield key, value
                if remaining is not None:
                    remaining -= 1
                    if remaining <= 0:
                        return

    def flush(self) -> None:
        """Flush every region's memstore (used before size measurements)."""
        for region in self._regions:
            region.flush()

    def compact(self) -> None:
        for region in self._regions:
            region.compact()

    # -- splitting -----------------------------------------------------------
    def _split(self, region: Region) -> None:
        entries = region.all_entries()
        if len(entries) < 2:
            return
        mid = len(entries) // 2
        split_key = entries[mid][0]
        if split_key <= region.start_key:
            return
        left = Region(region.start_key, split_key, self._stats,
                      server=region.server,
                      flush_bytes=self._store.flush_bytes,
                      block_bytes=self._store.block_bytes)
        right = Region(split_key, region.end_key, self._stats,
                       server=self._store.next_server(),
                       flush_bytes=self._store.flush_bytes,
                       block_bytes=self._store.block_bytes)
        # An HBase split creates reference files rather than rewriting
        # data, so the daughters' SSTables are built without write charges.
        left.sstables = [SSTable(entries[:mid], self._stats,
                                 self._store.block_bytes,
                                 charge_write=False)]
        right.sstables = [SSTable(entries[mid:], self._stats,
                                  self._store.block_bytes,
                                  charge_write=False)]
        index = self._regions.index(region)
        self._regions[index:index + 1] = [left, right]
        self._region_starts = [r.start_key for r in self._regions]

    # -- introspection ---------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return len(self._regions)

    @property
    def disk_bytes(self) -> int:
        """Bytes persisted in SSTables (index keys plus values)."""
        return sum(r.disk_bytes for r in self._regions)

    @property
    def total_bytes(self) -> int:
        return sum(r.total_bytes for r in self._regions)

    def count(self) -> int:
        """Number of live entries (full scan, charges I/O)."""
        return sum(1 for _ in self.scan(ScanSpec.full()))

    def servers_used(self) -> set[int]:
        return {r.server for r in self._regions}


class KVStore:
    """The store facade: named tables on ``num_servers`` region servers."""

    def __init__(self, num_servers: int = 5,
                 cache_bytes_per_server: int = 64 * 1024 * 1024,
                 flush_bytes: int = DEFAULT_FLUSH_BYTES,
                 split_bytes: int = DEFAULT_SPLIT_BYTES,
                 block_bytes: int = DEFAULT_BLOCK_BYTES):
        self.num_servers = num_servers
        self.flush_bytes = flush_bytes
        self.split_bytes = split_bytes
        self.block_bytes = block_bytes
        self.stats = IOStats()
        self._tables: dict[str, KVTable] = {}
        self._caches = [BlockCache(cache_bytes_per_server)
                        for _ in range(num_servers)]
        self._server_cursor = 0

    def next_server(self) -> int:
        """Round-robin region placement across servers."""
        server = self._server_cursor
        self._server_cursor = (self._server_cursor + 1) % self.num_servers
        return server

    def cache_for(self, server: int) -> BlockCache:
        return self._caches[server]

    def clear_caches(self) -> None:
        """Drop every block cache (benchmarks do this between queries)."""
        for cache in self._caches:
            cache.clear()

    # -- table management ------------------------------------------------------
    def create_table(self, name: str) -> KVTable:
        if name in self._tables:
            raise TableExistsError(name)
        table = KVTable(name, self)
        self._tables[name] = table
        return table

    def table(self, name: str) -> KVTable:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError(name)
        del self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)
