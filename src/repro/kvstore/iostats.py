"""I/O accounting for the simulated store."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class IOSnapshot:
    """An immutable copy of the counters at one instant."""

    disk_bytes_read: int = 0
    disk_bytes_written: int = 0
    cache_bytes_read: int = 0
    memstore_bytes_read: int = 0
    result_bytes: int = 0
    scans_started: int = 0
    blocks_read: int = 0
    cache_hits: int = 0
    wal_bytes_written: int = 0
    wal_appends: int = 0
    wal_syncs: int = 0
    wal_bytes_replayed: int = 0
    per_server_read: dict[int, int] = field(default_factory=dict)

    def delta(self, earlier: "IOSnapshot") -> "IOSnapshot":
        """Counter increments between ``earlier`` and this snapshot."""
        per_server = defaultdict(int)
        for server, value in self.per_server_read.items():
            per_server[server] = value - earlier.per_server_read.get(server, 0)
        return IOSnapshot(
            disk_bytes_read=self.disk_bytes_read - earlier.disk_bytes_read,
            disk_bytes_written=(self.disk_bytes_written
                                - earlier.disk_bytes_written),
            cache_bytes_read=self.cache_bytes_read - earlier.cache_bytes_read,
            memstore_bytes_read=(self.memstore_bytes_read
                                 - earlier.memstore_bytes_read),
            result_bytes=self.result_bytes - earlier.result_bytes,
            scans_started=self.scans_started - earlier.scans_started,
            blocks_read=self.blocks_read - earlier.blocks_read,
            cache_hits=self.cache_hits - earlier.cache_hits,
            wal_bytes_written=(self.wal_bytes_written
                               - earlier.wal_bytes_written),
            wal_appends=self.wal_appends - earlier.wal_appends,
            wal_syncs=self.wal_syncs - earlier.wal_syncs,
            wal_bytes_replayed=(self.wal_bytes_replayed
                                - earlier.wal_bytes_replayed),
            per_server_read=dict(per_server),
        )


class IOStats:
    """Mutable counters shared by every component of one store."""

    def __init__(self) -> None:
        self.disk_bytes_read = 0
        self.disk_bytes_written = 0
        self.cache_bytes_read = 0
        self.memstore_bytes_read = 0
        self.result_bytes = 0
        self.scans_started = 0
        self.blocks_read = 0
        self.cache_hits = 0
        self.wal_bytes_written = 0
        self.wal_appends = 0
        self.wal_syncs = 0
        self.wal_bytes_replayed = 0
        self.per_server_read: dict[int, int] = defaultdict(int)

    def record_disk_read(self, nbytes: int, server: int = 0) -> None:
        self.disk_bytes_read += nbytes
        self.blocks_read += 1
        self.per_server_read[server] += nbytes

    def record_cache_read(self, nbytes: int) -> None:
        self.cache_bytes_read += nbytes
        self.cache_hits += 1

    def record_disk_write(self, nbytes: int) -> None:
        self.disk_bytes_written += nbytes

    def record_memstore_read(self, nbytes: int) -> None:
        self.memstore_bytes_read += nbytes

    def record_result(self, nbytes: int) -> None:
        self.result_bytes += nbytes

    def record_scan(self) -> None:
        self.scans_started += 1

    def record_wal_append(self, nbytes: int, server: int = 0) -> None:
        self.wal_bytes_written += nbytes
        self.wal_appends += 1

    def record_wal_sync(self) -> None:
        self.wal_syncs += 1

    def record_wal_replay(self, nbytes: int, server: int = 0) -> None:
        self.wal_bytes_replayed += nbytes

    def snapshot(self) -> IOSnapshot:
        return IOSnapshot(
            disk_bytes_read=self.disk_bytes_read,
            disk_bytes_written=self.disk_bytes_written,
            cache_bytes_read=self.cache_bytes_read,
            memstore_bytes_read=self.memstore_bytes_read,
            result_bytes=self.result_bytes,
            scans_started=self.scans_started,
            blocks_read=self.blocks_read,
            cache_hits=self.cache_hits,
            wal_bytes_written=self.wal_bytes_written,
            wal_appends=self.wal_appends,
            wal_syncs=self.wal_syncs,
            wal_bytes_replayed=self.wal_bytes_replayed,
            per_server_read=dict(self.per_server_read),
        )

    def reset(self) -> None:
        self.__init__()
