"""I/O accounting for the simulated store."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class IOSnapshot:
    """An immutable copy of the counters at one instant."""

    disk_bytes_read: int = 0
    disk_bytes_written: int = 0
    cache_bytes_read: int = 0
    memstore_bytes_read: int = 0
    result_bytes: int = 0
    scans_started: int = 0
    blocks_read: int = 0
    cache_hits: int = 0
    wal_bytes_written: int = 0
    wal_appends: int = 0
    wal_syncs: int = 0
    wal_bytes_replayed: int = 0
    per_server_read: dict[int, int] = field(default_factory=dict)
    #: WAL bytes (appends + replay reads) attributed to each server, so
    #: recovery benchmarks can see which log a crash actually drained.
    per_server_wal: dict[int, int] = field(default_factory=dict)

    def delta(self, earlier: "IOSnapshot") -> "IOSnapshot":
        """Counter increments between ``earlier`` and this snapshot."""
        per_server = defaultdict(int)
        for server, value in self.per_server_read.items():
            per_server[server] = value - earlier.per_server_read.get(server, 0)
        per_server_wal = defaultdict(int)
        for server, value in self.per_server_wal.items():
            per_server_wal[server] = \
                value - earlier.per_server_wal.get(server, 0)
        return IOSnapshot(
            disk_bytes_read=self.disk_bytes_read - earlier.disk_bytes_read,
            disk_bytes_written=(self.disk_bytes_written
                                - earlier.disk_bytes_written),
            cache_bytes_read=self.cache_bytes_read - earlier.cache_bytes_read,
            memstore_bytes_read=(self.memstore_bytes_read
                                 - earlier.memstore_bytes_read),
            result_bytes=self.result_bytes - earlier.result_bytes,
            scans_started=self.scans_started - earlier.scans_started,
            blocks_read=self.blocks_read - earlier.blocks_read,
            cache_hits=self.cache_hits - earlier.cache_hits,
            wal_bytes_written=(self.wal_bytes_written
                               - earlier.wal_bytes_written),
            wal_appends=self.wal_appends - earlier.wal_appends,
            wal_syncs=self.wal_syncs - earlier.wal_syncs,
            wal_bytes_replayed=(self.wal_bytes_replayed
                                - earlier.wal_bytes_replayed),
            per_server_read=dict(per_server),
            per_server_wal=dict(per_server_wal),
        )


class IOStats:
    """Mutable counters shared by every component of one store.

    ``bind_metrics`` additionally mirrors every increment into a
    process-wide :class:`~repro.observability.metrics.MetricsRegistry`,
    so the store's I/O shows up on the ``/metrics`` endpoint alongside
    the service-layer counters without a second accounting path.
    """

    def __init__(self, metrics=None) -> None:
        self.disk_bytes_read = 0
        self.disk_bytes_written = 0
        self.cache_bytes_read = 0
        self.memstore_bytes_read = 0
        self.result_bytes = 0
        self.scans_started = 0
        self.blocks_read = 0
        self.cache_hits = 0
        self.wal_bytes_written = 0
        self.wal_appends = 0
        self.wal_syncs = 0
        self.wal_bytes_replayed = 0
        self.per_server_read: dict[int, int] = defaultdict(int)
        #: WAL bytes (appends + replay reads) per region server.
        self.per_server_wal: dict[int, int] = defaultdict(int)
        self.metrics = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, registry) -> None:
        """Mirror counters into a metrics registry from now on."""
        self.metrics = registry

    def _inc(self, name: str, amount: int) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def record_disk_read(self, nbytes: int, server: int = 0) -> None:
        self.disk_bytes_read += nbytes
        self.blocks_read += 1
        self.per_server_read[server] += nbytes
        self._inc("kvstore.disk_bytes_read", nbytes)
        self._inc("kvstore.blocks_read", 1)

    def record_cache_read(self, nbytes: int) -> None:
        self.cache_bytes_read += nbytes
        self.cache_hits += 1
        self._inc("kvstore.cache_bytes_read", nbytes)
        self._inc("kvstore.cache_hits", 1)

    def record_disk_write(self, nbytes: int) -> None:
        self.disk_bytes_written += nbytes
        self._inc("kvstore.disk_bytes_written", nbytes)

    def record_memstore_read(self, nbytes: int) -> None:
        self.memstore_bytes_read += nbytes
        self._inc("kvstore.memstore_bytes_read", nbytes)

    def record_result(self, nbytes: int) -> None:
        self.result_bytes += nbytes
        self._inc("kvstore.result_bytes", nbytes)

    def record_scan(self) -> None:
        self.scans_started += 1
        self._inc("kvstore.scans_started", 1)

    def record_wal_append(self, nbytes: int, server: int = 0) -> None:
        self.wal_bytes_written += nbytes
        self.wal_appends += 1
        self.per_server_wal[server] += nbytes
        self._inc("kvstore.wal_bytes_written", nbytes)
        self._inc("kvstore.wal_appends", 1)

    def record_wal_sync(self) -> None:
        self.wal_syncs += 1
        self._inc("kvstore.wal_syncs", 1)

    def record_wal_replay(self, nbytes: int, server: int = 0) -> None:
        self.wal_bytes_replayed += nbytes
        self.per_server_wal[server] += nbytes
        self._inc("kvstore.wal_bytes_replayed", nbytes)

    def snapshot(self) -> IOSnapshot:
        return IOSnapshot(
            disk_bytes_read=self.disk_bytes_read,
            disk_bytes_written=self.disk_bytes_written,
            cache_bytes_read=self.cache_bytes_read,
            memstore_bytes_read=self.memstore_bytes_read,
            result_bytes=self.result_bytes,
            scans_started=self.scans_started,
            blocks_read=self.blocks_read,
            cache_hits=self.cache_hits,
            wal_bytes_written=self.wal_bytes_written,
            wal_appends=self.wal_appends,
            wal_syncs=self.wal_syncs,
            wal_bytes_replayed=self.wal_bytes_replayed,
            per_server_read=dict(self.per_server_read),
            per_server_wal=dict(self.per_server_wal),
        )

    def reset(self) -> None:
        self.__init__(metrics=self.metrics)
