"""Scan specifications for the key-value store."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ScanSpec:
    """An inclusive key-range scan request.

    ``start=b""`` and ``end=b"\\xff" * 32`` together cover a whole table.
    ``limit`` stops the scan after that many live entries.
    """

    start: bytes = b""
    end: bytes = b"\xff" * 32
    limit: int | None = None

    @classmethod
    def full(cls) -> "ScanSpec":
        return cls()

    @classmethod
    def prefix(cls, prefix: bytes) -> "ScanSpec":
        """Scan every key beginning with ``prefix``."""
        return cls(prefix, prefix + b"\xff" * 16)
