"""Scan specifications for the key-value store."""

from __future__ import annotations

from dataclasses import dataclass


def prefix_successor(prefix: bytes) -> bytes | None:
    """The smallest byte string greater than every key with ``prefix``.

    Trailing ``0xff`` bytes cannot be incremented, so they are stripped
    first; a prefix that is empty or all ``0xff`` has no successor
    (every key sorts below no finite bound) and returns ``None``.
    """
    trimmed = prefix.rstrip(b"\xff")
    if not trimmed:
        return None
    return trimmed[:-1] + bytes([trimmed[-1] + 1])


@dataclass(frozen=True, slots=True)
class ScanSpec:
    """An inclusive key-range scan request.

    ``start=b""`` and ``end=b"\\xff" * 32`` together cover a whole table.
    ``limit`` stops the scan after that many live entries.  When
    ``end_exclusive`` is set the range is ``[start, end)`` instead, which
    lets prefix scans use an exact successor-of-prefix upper bound.
    """

    start: bytes = b""
    end: bytes = b"\xff" * 32
    limit: int | None = None
    end_exclusive: bool = False

    @classmethod
    def full(cls) -> "ScanSpec":
        return cls()

    @classmethod
    def prefix(cls, prefix: bytes) -> "ScanSpec":
        """Scan every key beginning with ``prefix``, whatever its length."""
        successor = prefix_successor(prefix)
        if successor is None:
            # No finite upper bound exists; scan to the end of the table.
            return cls(prefix, b"\xff" * 32)
        return cls(prefix, successor, end_exclusive=True)

    @property
    def stop(self) -> bytes:
        """The exclusive upper bound equivalent to this spec's range."""
        return self.end if self.end_exclusive else self.end + b"\x00"
