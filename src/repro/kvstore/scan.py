"""Scan specifications for the key-value store."""

from __future__ import annotations

from dataclasses import dataclass

#: Entries per batch on the batched scan path.  Matches the dataframe
#: layer's row-batch size so one KV batch decodes into one RowBatch.
DEFAULT_BATCH_ROWS = 256


def chunk_pairs(pairs, batch_rows: int = DEFAULT_BATCH_ROWS):
    """Group a ``(key, value)`` stream into lists of ``batch_rows``.

    The source generator is pulled lazily, one batch ahead of the
    consumer, so deadline checks and lazy block charges inside the
    stream keep their granularity.
    """
    batch: list = []
    for pair in pairs:
        batch.append(pair)
        if len(batch) >= batch_rows:
            yield batch
            batch = []
    if batch:
        yield batch


def prefix_successor(prefix: bytes) -> bytes | None:
    """The smallest byte string greater than every key with ``prefix``.

    Trailing ``0xff`` bytes cannot be incremented, so they are stripped
    first; a prefix that is empty or all ``0xff`` has no successor
    (every key sorts below no finite bound) and returns ``None``.
    """
    trimmed = prefix.rstrip(b"\xff")
    if not trimmed:
        return None
    return trimmed[:-1] + bytes([trimmed[-1] + 1])


@dataclass(frozen=True, slots=True)
class ScanSpec:
    """An inclusive key-range scan request.

    ``end=None`` means unbounded above, so the default spec covers a
    whole table whatever its key lengths.  ``limit`` stops the scan after
    that many live entries.  When ``end_exclusive`` is set the range is
    ``[start, end)`` instead, which lets prefix scans use an exact
    successor-of-prefix upper bound.
    """

    start: bytes = b""
    end: bytes | None = None
    limit: int | None = None
    end_exclusive: bool = False

    @classmethod
    def full(cls) -> "ScanSpec":
        return cls()

    @classmethod
    def prefix(cls, prefix: bytes) -> "ScanSpec":
        """Scan every key beginning with ``prefix``, whatever its length."""
        successor = prefix_successor(prefix)
        if successor is None:
            # No finite upper bound exists; scan to the end of the table.
            return cls(prefix, None)
        return cls(prefix, successor, end_exclusive=True)

    @property
    def stop(self) -> bytes | None:
        """The exclusive upper bound equivalent to this spec's range;
        ``None`` is unbounded above."""
        if self.end is None:
            return None
        return self.end if self.end_exclusive else self.end + b"\x00"
