"""Crash recovery: region failover and WAL replay.

When a region server dies, its memstores die with it.  Recovery walks
the dead server's write-ahead log, reassigns each of its regions to a
surviving server, and replays the unflushed edits into the reassigned
regions' fresh memstores (re-logging them on the destination server so
durability holds across chained failures).  The result is summarized in
a :class:`RecoveryReport` — recovery time here is simulated
milliseconds from the cluster cost model, exactly like query latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kvstore.wal import WALRecord


@dataclass
class RecoveryReport:
    """What one server failover cost and recovered."""

    server: int
    regions_reassigned: int = 0
    replayed_records: int = 0
    replayed_bytes: int = 0
    #: Records lost at the crash: the unsynced WAL tail plus any
    #: corruption-discarded records.  Under SYNC with no corruption
    #: this is always zero.
    discarded_records: int = 0
    recovery_ms: float = 0.0
    #: Regions recovered by *promoting* a follower replica instead of
    #: replaying the WAL (always 0 without replication).
    promoted_regions: int = 0
    #: Surviving primary-log records the promoted followers had not yet
    #: applied and replayed at promotion (their replication lag).
    catchup_records: int = 0
    #: region_id -> new hosting server.
    reassignments: dict[int, int] = field(default_factory=dict)


def recover_server(store, server: int,
                   records: list[WALRecord],
                   discarded_records: int = 0,
                   model=None, only_regions: set[int] | None = None,
                   emit_event: bool = True) -> RecoveryReport:
    """Fail a dead server's regions over to survivors and replay its WAL.

    ``records`` is the surviving (synced, unflushed) log suffix from
    :meth:`WriteAheadLog.crash`; with the WAL disabled it is empty and
    failover silently loses every unflushed edit.  ``only_regions``
    restricts recovery to a subset of the dead server's regions (the
    replication manager promotes the rest from follower replicas), and
    ``emit_event=False`` suppresses the FailoverEvent so a wrapping
    recovery can emit one combined event instead.
    """
    if model is None:
        from repro.cluster.simclock import CostModel
        model = CostModel()
    report = RecoveryReport(server=server,
                            discarded_records=discarded_records)
    region_map = {}
    for table in store.tables():
        for region in table.regions():
            if region.server != server:
                continue
            if only_regions is not None \
                    and region.region_id not in only_regions:
                continue
            region.memstore.clear()  # the server's RAM is gone
            # Eagerly drop the dead server's cached blocks for this
            # region, matching the move_region source-side eviction.
            # crash_server clears the whole cache anyway; this keeps
            # failover correct on its own for any future path that
            # reaches it without the wholesale clear.
            region.evict_cached_blocks(server=server)
            region.server = store.next_server()
            region.wal = store.wal_for(region.server)
            # The destination server starts with a cold view of this
            # region: drop any blocks its cache may hold for the
            # region's SSTables.
            region.evict_cached_blocks(server=region.server)
            # Sequence numbers are per-server, so the dead server's high
            # watermark means nothing to the destination WAL — left in
            # place it would checkpoint the new log above seqnos it has
            # not issued yet, truncating live records and losing them at
            # the next crash.  Replay rebuilds it from the destination's
            # own seqnos.
            region.max_seqno = 0
            region_map[region.region_id] = (table, region)
            report.reassignments[region.region_id] = region.server
    report.regions_reassigned = len(region_map)

    before = store.stats.snapshot()
    for record in records:
        entry = region_map.get(record.region_id)
        if entry is None:
            continue  # region split or table dropped after the append
        _table, region = entry
        seqno = None
        wal = store.wal_for(region.server)
        if wal is not None:
            seqno = wal.append(record.table, region.region_id,
                               record.key, record.value)
        region.put(record.key, record.value, seqno)
        report.replayed_records += 1
        report.replayed_bytes += record.nbytes
    # Replay bypasses KVTable._mutate, so re-check the split threshold for
    # every rehomed region rather than deferring to the next mutation.
    for table, region in region_map.values():
        if region.total_bytes >= store.split_bytes:
            table._split(region)
    store.stats.record_wal_replay(report.replayed_bytes, server)
    delta = store.stats.snapshot().delta(before)

    scale = model.effective_record_scale
    report.recovery_ms = (
        # split & sequentially read the dead server's log,
        model.disk_read_ms(report.replayed_bytes)
        # re-log the edits on the destination servers,
        + model.disk_write_ms(delta.wal_bytes_written)
        + delta.wal_syncs * model.fsync_ms
        # flushes triggered mid-replay,
        + model.disk_write_ms(delta.disk_bytes_written)
        # re-insert each edit and reopen each region.
        + report.replayed_records * model.kv_put_us * scale / 1000.0
        + report.regions_reassigned * model.region_reopen_ms)
    events = getattr(store, "events", None)
    if events is not None and emit_event:
        from repro.observability.events import FailoverEvent
        events.emit(FailoverEvent(
            server=server,
            regions_reassigned=report.regions_reassigned,
            replayed_records=report.replayed_records,
            discarded_records=report.discarded_records,
            recovery_ms=round(report.recovery_ms, 3)))
    return report
