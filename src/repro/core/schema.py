"""Table schemas and field types.

A JustQL column definition looks like ``geom point:srid=4326`` or
``gpsList st_series:compress=gzip``; :func:`Field.parse` understands that
syntax, and :class:`Schema` validates rows against the declared fields.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.geometry.base import Geometry
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.trajectory.model import STSeries, TSeries


class FieldType(enum.Enum):
    """Column types supported by JustQL CREATE TABLE."""

    INTEGER = "integer"
    LONG = "long"
    DOUBLE = "double"
    STRING = "string"
    BOOLEAN = "boolean"
    DATE = "date"                # epoch seconds (float)
    POINT = "point"
    LINESTRING = "linestring"
    POLYGON = "polygon"
    GEOMETRY = "geometry"        # any of the above geometry types
    ST_SERIES = "st_series"      # sequence of (lng, lat, t)
    T_SERIES = "t_series"        # sequence of (t, value)

    @classmethod
    def from_name(cls, name: str) -> "FieldType":
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(t.value for t in cls)
            raise SchemaError(
                f"unknown field type {name!r}; expected one of {valid}"
            ) from None

    @property
    def is_geometry(self) -> bool:
        return self in (FieldType.POINT, FieldType.LINESTRING,
                        FieldType.POLYGON, FieldType.GEOMETRY)


_PY_TYPES = {
    FieldType.INTEGER: (int,),
    FieldType.LONG: (int,),
    FieldType.DOUBLE: (int, float),
    FieldType.STRING: (str,),
    FieldType.BOOLEAN: (bool,),
    FieldType.DATE: (int, float),
    FieldType.POINT: (Point,),
    FieldType.LINESTRING: (LineString,),
    FieldType.POLYGON: (Polygon,),
    FieldType.GEOMETRY: (Geometry,),
    FieldType.ST_SERIES: (STSeries,),
    FieldType.T_SERIES: (TSeries,),
}

_VALID_COMPRESSION = ("none", "gzip", "zip")


@dataclass(frozen=True)
class Field:
    """One column: name, type, and options."""

    name: str
    ftype: FieldType
    primary_key: bool = False
    srid: int = 4326
    compress: str = "none"
    options: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.compress not in _VALID_COMPRESSION:
            raise SchemaError(
                f"field {self.name!r}: unknown compression "
                f"{self.compress!r}; expected one of {_VALID_COMPRESSION}")

    @classmethod
    def parse(cls, name: str, type_spec: str) -> "Field":
        """Parse a JustQL column spec such as ``'point:srid=4326'``.

        Options after the type are colon-separated; ``primary key`` marks
        the feature-id column, ``srid=N`` and ``compress=M`` set options.
        """
        parts = [p.strip() for p in type_spec.split(":")]
        ftype = FieldType.from_name(parts[0])
        primary_key = False
        srid = 4326
        compress = "none"
        options: dict = {}
        for option in parts[1:]:
            lowered = option.lower()
            if lowered in ("primary key", "primary_key"):
                primary_key = True
            elif lowered.startswith("srid="):
                srid = int(option.split("=", 1)[1])
            elif lowered.startswith("compress="):
                compress = option.split("=", 1)[1].split("|")[0].lower()
            else:
                key, _, value = option.partition("=")
                options[key.strip()] = value.strip()
        return cls(name, ftype, primary_key, srid, compress, options)

    def validate(self, value) -> None:
        """Raise SchemaError when ``value`` cannot live in this column."""
        if value is None:
            if self.primary_key:
                raise SchemaError(
                    f"primary key {self.name!r} must not be NULL")
            return
        expected = _PY_TYPES[self.ftype]
        if not isinstance(value, expected):
            names = "/".join(t.__name__ for t in expected)
            raise SchemaError(
                f"field {self.name!r} expects {names}, got "
                f"{type(value).__name__}")


class Schema:
    """An ordered collection of fields with at most one primary key."""

    def __init__(self, fields: list[Field]):
        if not fields:
            raise SchemaError("a schema needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in schema: {names}")
        pks = [f for f in fields if f.primary_key]
        if len(pks) > 1:
            raise SchemaError("at most one primary key field is allowed")
        self.fields = list(fields)
        self._by_name = {f.name: f for f in fields}
        self.primary_key = pks[0] if pks else None

    def __iter__(self):
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no field named {name!r}") from None

    @property
    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    @property
    def geometry_field(self) -> Field | None:
        """The first geometry-typed field (the default spatial column)."""
        for f in self.fields:
            if f.ftype.is_geometry:
                return f
        return None

    @property
    def time_field(self) -> Field | None:
        """The first date-typed field (the default temporal column)."""
        for f in self.fields:
            if f.ftype == FieldType.DATE:
                return f
        return None

    @property
    def st_series_field(self) -> Field | None:
        for f in self.fields:
            if f.ftype == FieldType.ST_SERIES:
                return f
        return None

    def validate_row(self, row: dict) -> None:
        """Check a row's values; extra keys are rejected."""
        extras = set(row) - set(self._by_name)
        if extras:
            raise SchemaError(f"row has unknown fields: {sorted(extras)}")
        for f in self.fields:
            f.validate(row.get(f.name))

    def fid_of(self, row: dict) -> str:
        """The record's feature id (stringified primary key)."""
        if self.primary_key is None:
            raise SchemaError("schema has no primary key")
        return str(row[self.primary_key.name])

    def describe(self) -> list[dict]:
        """Rows for the DESC statement."""
        out = []
        for f in self.fields:
            flags = []
            if f.primary_key:
                flags.append("primary key")
            if f.srid != 4326 and f.ftype.is_geometry:
                flags.append(f"srid={f.srid}")
            if f.compress != "none":
                flags.append(f"compress={f.compress}")
            out.append({"field": f.name, "type": f.ftype.value,
                        "flags": ", ".join(flags)})
        return out
