"""``JustEngine`` — the library facade.

Wires together the key-value store, the cluster cost model, the catalog,
and the table models, and exposes the paper's operations: definition
(create/drop/show/describe), manipulation (insert/load), query (spatial
range, spatio-temporal range, k-NN), and — through :meth:`JustEngine.sql`
— the whole JustQL surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import Cluster
from repro.cluster.simclock import CostModel, SimJob
from repro.core.catalog import Catalog, TableMeta
from repro.core.knn import KNNResult, knn_query
from repro.core.loader import SourceRegistry, apply_config, load_file
from repro.core.query import choose_strategy, choose_strategy_cost_based
from repro.core.plugins import plugin_class
from repro.core.schema import Field, FieldType, Schema
from repro.core.tables import CommonTable, ViewTable
from repro.curves.strategies import STQuery, strategy_from_name
from repro.curves.timeperiod import TimePeriod
from repro.dataframe import DataFrame
from repro.errors import (
    ExecutionError,
    SchemaError,
    TableExistsError,
    TableNotFoundError,
)
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.kvstore.store import KVStore
from repro.trajectory.model import STSeries, TSeries

_GB = 1024 ** 3


@dataclass
class QueryResult:
    """Rows plus the simulated cost of producing them."""

    rows: list[dict]
    job: SimJob
    extra: dict = field(default_factory=dict)

    @property
    def sim_ms(self) -> float:
        return self.job.elapsed_ms

    @property
    def breakdown(self) -> dict[str, float]:
        return dict(self.job.breakdown)

    def dataframe(self, columns: list[str] | None = None) -> DataFrame:
        return DataFrame.from_rows(self.rows, columns)

    def __len__(self) -> int:
        return len(self.rows)


class JustEngine:
    """One engine instance == one deployed JUST cluster."""

    def __init__(self, num_servers: int = 5,
                 memory_budget_bytes: int = 5 * 32 * _GB,
                 cost_model: CostModel | None = None,
                 compression_enabled: bool = True,
                 num_shards: int = 4,
                 max_ranges: int = 256,
                 default_period: TimePeriod = TimePeriod.DAY,
                 cache_bytes_per_server: int = 64 * 1024 * 1024,
                 block_bytes: int | None = None,
                 cost_based_planner: bool = False,
                 adaptive_execution: bool = False,
                 oltp_threshold_bytes: int = 64 * 1024,
                 local_overhead_ms: float = 5.0,
                 wal_policy=None,
                 split_bytes: int | None = None,
                 flush_bytes: int | None = None,
                 replication_factor: int = 1,
                 read_mode: str = "primary",
                 vectorized: bool = True):
        #: Process-wide observability registry: the store's I/O stats,
        #: the SQL operators, and the service layer all report into it.
        from repro.observability.events import EventLog
        from repro.observability.metrics import MetricsRegistry
        self.metrics = MetricsRegistry()
        #: Cluster event log (flushes, compactions, splits, failovers,
        #: ...), shared with the store and the service layer; queryable
        #: as ``sys.events``.
        self.events = EventLog()
        self.cluster = Cluster(num_servers, memory_budget_bytes, cost_model)
        store_kwargs = {"cache_bytes_per_server": cache_bytes_per_server,
                        "metrics": self.metrics,
                        "events": self.events,
                        # The store shares the cluster's cost model so
                        # kvstore-level trace spans (per-region scans)
                        # can estimate simulated time.
                        "cost_model": self.cluster.model}
        if block_bytes is not None:
            store_kwargs["block_bytes"] = block_bytes
        if split_bytes is not None:
            # Small split/flush thresholds let tests spread a modest table
            # across many regions (and thus many servers) cheaply.
            store_kwargs["split_bytes"] = split_bytes
        if flush_bytes is not None:
            store_kwargs["flush_bytes"] = flush_bytes
        if wal_policy is not None:
            # Durable ingest: every region server keeps a write-ahead log
            # and the store survives injected region-server crashes.
            store_kwargs["wal_policy"] = wal_policy
        if replication_factor > 1:
            # Region replication: a primary plus followers on distinct
            # servers, WAL shipping, quorum writes, fast promote failover.
            store_kwargs["replication_factor"] = replication_factor
            store_kwargs["read_mode"] = read_mode
        self.store = KVStore(num_servers, **store_kwargs)
        self.catalog = Catalog()
        self.sources = SourceRegistry()
        self.compression_enabled = compression_enabled
        self.num_shards = num_shards
        self.max_ranges = max_ranges
        self.default_period = default_period
        self._tables: dict[str, CommonTable] = {}
        self._views: dict[str, ViewTable] = {}
        self._topics: dict[str, object] = {}
        self._stream_loaders: list = []
        #: Future work #3: pick indexes by estimated cost, not rules.
        self.cost_based_planner = cost_based_planner
        #: Future work #4: serve small requests on a single machine,
        #: skipping the distributed-job overhead (OLAP + OLTP combined).
        self.adaptive_execution = adaptive_execution
        self.oltp_threshold_bytes = oltp_threshold_bytes
        self.local_overhead_ms = local_overhead_ms
        #: Batch-at-a-time SQL execution: columnar scan batches out of
        #: the kvstore, vectorized filter/project/aggregate.  Off runs
        #: the row-at-a-time path (the benchmark baseline).
        self.vectorized = vectorized
        #: Optional hot-region load balancer (see :meth:`enable_balancer`);
        #: None means placement stays pure round-robin.
        self.balancer = None
        #: Optional monitoring pipeline (see :meth:`enable_monitoring`);
        #: None means no metrics history / SLOs / alerts are kept.
        self.monitor = None
        #: Virtual ``sys.*`` tables: live row providers over engine state.
        self.system_tables: dict[str, object] = {}
        from repro.core.systables import install_system_tables
        install_system_tables(self)

    # -- load balancing ----------------------------------------------------------
    def enable_balancer(self, policy=None):
        """Attach a hot-region load balancer to this engine's store.

        Returns the :class:`repro.balancer.Balancer`.  The service layer
        ticks it after every statement (the master's balancer chore on
        the simulated clock); library users call ``balancer.tick()`` or
        ``balancer.maybe_tick()`` themselves.  Its decisions surface in
        ``sys.balancer`` and as events in ``sys.events``.
        """
        from repro.balancer import Balancer
        if self.balancer is None:
            self.balancer = Balancer(self.store, policy)
        elif policy is not None:
            self.balancer.policy = policy
        return self.balancer

    # -- monitoring --------------------------------------------------------------
    def enable_monitoring(self, **kwargs):
        """Attach the scrape → history → SLO → alert pipeline.

        Returns the :class:`repro.observability.monitor.Monitor`.  The
        service layer ticks its scrape chore after every statement;
        library users call ``monitor.maybe_tick()`` (or ``tick()``)
        themselves.  Retained series surface in ``sys.metrics_history``,
        objectives in ``sys.slos``, and alert state in ``sys.alerts``
        (plus ``slo_burn``/``alert`` events in ``sys.events``).
        """
        from repro.observability.monitor import Monitor
        if self.monitor is None:
            self.monitor = Monitor(self, **kwargs)
        return self.monitor

    # -- replication -------------------------------------------------------------
    @property
    def replication(self):
        """The store's :class:`~repro.replication.ReplicationManager`
        (``None`` until replication is enabled)."""
        return self.store.replication

    def enable_replication(self, factor: int = 3,
                           read_mode: str = "primary", **kwargs):
        """Turn on region replication for this engine's store.

        Returns the :class:`repro.replication.ReplicationManager`.
        Requires a WAL policy (replication ships primary WAL records to
        follower WALs).  The service layer ticks its anti-entropy chore
        after every statement; library users call
        ``replication.maybe_tick()`` themselves.  Replica state surfaces
        in ``sys.replication`` and as events in ``sys.events``.
        """
        return self.store.enable_replication(factor=factor,
                                             read_mode=read_mode,
                                             **kwargs)

    # -- system tables -----------------------------------------------------------
    def register_system_table(self, name: str, columns, provider,
                              description: str = "",
                              types=()) -> None:
        """Register (or re-register) one read-only ``sys.*`` table.

        Re-registration replaces the provider — the service layer
        upgrades ``sys.sessions`` / ``sys.slow_queries`` from the
        engine's empty defaults to live server-backed ones.
        """
        from repro.core.systables import SystemTable
        table = SystemTable(name, tuple(columns), provider,
                            description=description, types=tuple(types))
        self.system_tables[name] = table
        self.catalog.replace(TableMeta(name, "system", table.schema(),
                                       index_names=[]))

    def has_system_table(self, name: str) -> bool:
        return name in self.system_tables

    def system_table(self, name: str):
        return self.system_tables[name]

    def system_rows(self, name: str) -> list[dict]:
        return self.system_tables[name].rows()

    # -- statistics --------------------------------------------------------------
    def analyze_table(self, name: str):
        """ANALYZE TABLE: measure live statistics for the planner.

        Rescans the table (charged like any full scan), snapshots the
        measured row count, envelope, time extent, index sizes, and
        per-region key distribution into a
        :class:`~repro.core.stats.TableStats` on ``table.stats``, which
        the cost-based planner prefers over the grow-only inline stats.
        Returns ``(stats, job)``.
        """
        from repro.core.stats import collect_table_stats
        table = self.table(name)
        job = self.cluster.job()
        stats = collect_table_stats(table, job,
                                    now_ms=self.events.now_ms)
        table.stats = stats
        return stats, job

    # -- index configuration ----------------------------------------------------
    def _default_index_names(self, schema: Schema) -> list[str]:
        geometry = schema.geometry_field
        if geometry is None and schema.st_series_field is None:
            return []  # attribute-only table: id lookups and full scans
        point_like = geometry is not None and \
            geometry.ftype == FieldType.POINT
        has_time = schema.time_field is not None
        if point_like:
            return ["z2", "z2t"] if has_time else ["z2"]
        return ["xz2", "xz2t"] if has_time else ["xz2"]

    def _build_strategies(self, names: list[str],
                          userdata: dict | None) -> dict:
        userdata = userdata or {}
        period = self.default_period
        if "just.time_period" in userdata:
            period = TimePeriod.from_name(userdata["just.time_period"])
        num_shards = int(userdata.get("just.num_shards", self.num_shards))
        max_ranges = int(userdata.get("just.max_ranges", self.max_ranges))
        strategies = {}
        for name in names:
            strategy = strategy_from_name(name, period=period,
                                          num_shards=num_shards,
                                          max_ranges=max_ranges)
            strategies[name] = strategy
        return strategies

    def _index_names(self, schema: Schema,
                     userdata: dict | None) -> list[str]:
        if userdata and "geomesa.indices.enabled" in userdata:
            names = [n.strip() for n in
                     userdata["geomesa.indices.enabled"].split(",")
                     if n.strip()]
            if not names:
                raise SchemaError("geomesa.indices.enabled is empty")
            return names
        return self._default_index_names(schema)

    # -- definition operations ----------------------------------------------------
    def create_table(self, name: str, schema: Schema,
                     userdata: dict | None = None) -> CommonTable:
        """CREATE TABLE with an explicit schema (common table)."""
        if self.catalog.exists(name) or name in self._views:
            raise TableExistsError(name)
        index_names = self._index_names(schema, userdata)
        strategies = self._build_strategies(index_names, userdata)
        presplit, salt_buckets = _placement_options(userdata)
        table = CommonTable(name, schema, self.store, strategies,
                            self.compression_enabled,
                            attribute_fields=_attribute_fields(userdata),
                            presplit=presplit,
                            salt_buckets=salt_buckets)
        self.catalog.create(TableMeta(name, "common", schema, index_names,
                                      userdata=userdata or {}))
        self._tables[name] = table
        return table

    def create_plugin_table(self, name: str, plugin_type: str,
                            userdata: dict | None = None) -> CommonTable:
        """CREATE TABLE <name> AS <plugin> (plugin table)."""
        if self.catalog.exists(name) or name in self._views:
            raise TableExistsError(name)
        cls = plugin_class(plugin_type)
        if userdata and "geomesa.indices.enabled" in userdata:
            index_names = [n.strip() for n in
                           userdata["geomesa.indices.enabled"].split(",")]
        else:
            index_names = ["xz2", "xz2t"]
        strategies = self._build_strategies(index_names, userdata)
        presplit, salt_buckets = _placement_options(userdata)
        table = cls(name, self.store, strategies, self.compression_enabled,
                    attribute_fields=_attribute_fields(userdata),
                    presplit=presplit, salt_buckets=salt_buckets)
        self.catalog.create(TableMeta(name, "plugin", table.schema,
                                      index_names, plugin_type=plugin_type,
                                      userdata=userdata or {}))
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        self.catalog.drop(name)
        table = self._tables.pop(name)
        table.drop_storage()

    def table(self, name: str) -> CommonTable:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self, prefix: str = "") -> list[str]:
        """User-table names (``sys.*`` system tables and materialized
        views are not listed — views show up in ``SHOW VIEWS``)."""
        return [m.name for m in self.catalog.list_tables(prefix)
                if m.kind not in ("system", "view")]

    # -- views ----------------------------------------------------------------------
    def create_view(self, name: str, dataframe: DataFrame,
                    owner: str | None = None) -> ViewTable:
        if self.catalog.exists(name) or name in self._views:
            raise TableExistsError(name)
        view = ViewTable(name, dataframe, owner)
        self._views[name] = view
        return view

    def create_materialized_view(self, name: str, columns, types=None,
                                 owner: str | None = None):
        """Create an empty, incrementally-maintained materialized view.

        Unlike :meth:`create_view` snapshots, the view is registered in
        the catalog (kind ``"view"``, so ``DESC`` and ``sys.tables``
        see it) and is kept fresh by whatever stream loader it is
        attached to (:meth:`StreamLoader.materialize_window`).
        """
        from repro.streaming.views import MaterializedView
        if self.catalog.exists(name) or name in self._views:
            raise TableExistsError(name)
        view = MaterializedView(name, columns, types=types, owner=owner)
        self._views[name] = view
        self.catalog.create(TableMeta(name, "view", view.schema(),
                                      index_names=[]))
        return view

    def is_materialized_view(self, name: str) -> bool:
        from repro.streaming.views import MaterializedView
        return isinstance(self._views.get(name), MaterializedView)

    def drop_view(self, name: str) -> None:
        if name not in self._views:
            raise TableNotFoundError(name)
        del self._views[name]
        if self.catalog.exists(name) and self.catalog.get(name).kind == "view":
            self.catalog.drop(name)

    def view(self, name: str) -> ViewTable:
        try:
            view = self._views[name]
        except KeyError:
            raise TableNotFoundError(name) from None
        view.touch()
        return view

    def has_view(self, name: str) -> bool:
        return name in self._views

    def view_names(self, prefix: str = "") -> list[str]:
        return sorted(n for n in self._views if n.startswith(prefix))

    def store_view_to_table(self, view_name: str, table_name: str,
                            userdata: dict | None = None) -> CommonTable:
        """STORE VIEW ... TO TABLE ... (auto-creates the table)."""
        view = self.view(view_name)
        rows = view.dataframe.collect()
        if table_name in self._tables:
            table = self._tables[table_name]
        else:
            schema = infer_schema(rows, view.dataframe.columns)
            table = self.create_table(table_name, schema, userdata)
        next_fid = table.row_count + 1
        coerced = []
        for offset, row in enumerate(rows):
            coerced.append(_coerce_row(row, table.schema, next_fid + offset))
        table.insert_rows(coerced, self.cluster.job())
        return table

    def expire_views(self, max_idle_seconds: float) -> list[str]:
        """Drop *cached* views idle for longer than ``max_idle_seconds``.

        Materialized views are durable pipeline outputs, not session
        caches — they never expire.
        """
        import time as _time
        now = _time.monotonic()
        stale = [name for name, view in self._views.items()
                 if now - view.last_used_at > max_idle_seconds
                 and not self.is_materialized_view(name)]
        for name in stale:
            self.drop_view(name)
        return stale

    # -- manipulation operations --------------------------------------------------------
    def insert(self, table_name: str, rows: list[dict]) -> QueryResult:
        table = self.table(table_name)
        job = self.cluster.job()
        table.insert_rows(rows, job)
        return QueryResult(rows=[], job=job,
                           extra={"inserted": len(rows)})

    def register_source(self, name: str, rows) -> None:
        """Register an external ("hive") source for LOAD statements."""
        self.sources.register(name, rows)

    def load(self, source: str, table_name: str, config: dict[str, str],
             row_filter=None, limit: int | None = None) -> QueryResult:
        """LOAD <source> TO geomesa:<table> CONFIG {...} [FILTER ...].

        ``source`` is ``hive:<name>`` for a registered source or
        ``file:<path>`` for CSV/GeoJSON/GPX/KML files.
        """
        scheme, _, locator = source.partition(":")
        if scheme == "hive" or scheme == "hbase":
            source_rows = self.sources.rows(locator)
        elif scheme == "file":
            source_rows = load_file(locator)
        else:
            raise ExecutionError(
                f"unknown LOAD source scheme {scheme!r}; use hive:, "
                f"hbase: or file:")
        table = self.table(table_name)
        job = self.cluster.job()
        mapped = []
        for source_row in source_rows:
            if row_filter is not None and not row_filter(source_row):
                continue
            mapped.append(apply_config(source_row, config))
            if limit is not None and len(mapped) >= limit:
                break
        job.charge_cpu_records(len(mapped), us_per_record=4.0)
        table.insert_rows(mapped, job)
        return QueryResult(rows=[], job=job, extra={"loaded": len(mapped)})

    # -- query operations -------------------------------------------------------------------
    def _plan(self, table, query: STQuery):
        """Pick (strategy_name, effective_query) per the planner mode."""
        if self.cost_based_planner:
            return choose_strategy_cost_based(table, query,
                                              self.cluster.model)
        return choose_strategy(table, query)

    def _charge_query_overhead(self, job, table, strategy_name: str,
                               query: STQuery) -> None:
        """Distributed-driver overhead, or the cheap local path when
        adaptive execution sees a small request (future work #4)."""
        if self.adaptive_execution and strategy_name in table.strategies:
            strategy = table.strategies[strategy_name]
            selectivity = strategy.estimate_selectivity(
                query, table.time_extent, table.data_envelope)
            estimated = selectivity * max(
                1, table.index_storage_bytes(strategy_name))
            if estimated <= self.oltp_threshold_bytes:
                job.charge_fixed("driver_local", self.local_overhead_ms)
                return
        job.charge_fixed("driver", self.cluster.model.query_overhead_ms)

    def spatial_range_query(self, table_name: str, envelope: Envelope,
                            predicate: str = "intersects",
                            ctx=None) -> QueryResult:
        """All records intersecting (or within) a spatial rectangle."""
        table = self.table(table_name)
        job = self.cluster.job()
        if ctx is not None:
            ctx.bind(job)
        query = STQuery(envelope=envelope)
        if table.strategies:
            strategy_name, effective = self._plan(table, query)
            self._charge_query_overhead(job, table, strategy_name,
                                        effective)
            rows = table.query(effective, predicate, job, strategy_name,
                               ctx)
            if effective is not query:
                rows = [r for r in rows if table._matches(r, query,
                                                          predicate)]
        else:
            job.charge_fixed("driver",
                             self.cluster.model.query_overhead_ms)
            rows = table.query(query, predicate, job, ctx=ctx)
        return QueryResult(rows, job)

    def st_range_query(self, table_name: str, envelope: Envelope | None,
                       t_min: float, t_max: float,
                       predicate: str = "intersects",
                       ctx=None) -> QueryResult:
        """All records in a spatial rectangle during [t_min, t_max]."""
        table = self.table(table_name)
        job = self.cluster.job()
        if ctx is not None:
            ctx.bind(job)
        query = STQuery(envelope, t_min, t_max)
        if table.strategies:
            strategy_name, effective = self._plan(table, query)
            self._charge_query_overhead(job, table, strategy_name,
                                        effective)
            rows = table.query(effective, predicate, job, strategy_name,
                               ctx)
            if effective is not query:
                rows = [r for r in rows if table._matches(r, query,
                                                          predicate)]
        else:
            job.charge_fixed("driver",
                             self.cluster.model.query_overhead_ms)
            rows = table.query(query, predicate, job, ctx=ctx)
        return QueryResult(rows, job)

    def knn(self, table_name: str, lng: float, lat: float,
            k: int, min_cell_km: float = 1.0) -> QueryResult:
        """The k records nearest to a query point (Algorithm 1)."""
        table = self.table(table_name)
        job = self.cluster.job()
        job.charge_fixed("driver", self.cluster.model.query_overhead_ms)
        result: KNNResult = knn_query(table, lng, lat, k, job,
                                      min_cell_km=min_cell_km)
        return QueryResult(result.rows, job, extra={
            "distances": result.distances,
            "areas_queried": result.areas_queried,
            "areas_pruned": result.areas_pruned,
        })

    # -- streaming (Section IX future work #1) ---------------------------------------------
    def create_topic(self, name: str):
        """Create a named streaming topic (the Kafka stand-in)."""
        from repro.streaming.stream import StreamTopic
        if name in self._topics:
            raise TableExistsError(name)
        topic = StreamTopic(name)
        self._topics[name] = topic
        return topic

    def topic(self, name: str):
        try:
            return self._topics[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def stream_load(self, topic_name: str, table_name: str,
                    config: dict[str, str], batch_size: int = 1000,
                    row_filter=None, start_offset: int = 0,
                    max_delay_s: float = 0.0, name: str | None = None,
                    time_field: str | None = None):
        """Bind a topic to a table; returns the micro-batch loader.

        ``start_offset`` resumes at a saved position; ``max_delay_s``
        bounds event-time out-of-orderness for the loader's watermark.
        Every loader is registered for the ``sys.streams`` table.
        """
        from repro.streaming.stream import StreamLoader
        self.table(table_name)  # validate early
        loader = StreamLoader(self, self.topic(topic_name), table_name,
                              config, batch_size, row_filter,
                              start_offset=start_offset,
                              max_delay_s=max_delay_s, name=name,
                              time_field=time_field)
        self._stream_loaders.append(loader)
        return loader

    def stream_loaders(self) -> list:
        """Every loader created through :meth:`stream_load`."""
        return list(self._stream_loaders)

    # -- SQL ----------------------------------------------------------------------------------
    def sql(self, statement: str, namespace: str = "", ctx=None):
        """Execute one JustQL statement; returns a ResultSet.

        ``ctx`` (a :class:`repro.resilience.RequestContext`) carries an
        optional deadline and partial-results mode down through planning,
        physical execution, and the store's region iteration.
        """
        from repro.sql.executor import execute_statement
        return execute_statement(self, statement, namespace, ctx)


def _placement_options(userdata: dict | None) -> tuple[int, int]:
    """Parse ``WITH (presplit=N, salt_buckets=K)`` placement userdata.

    The parser folds the WITH clause into userdata as ``just.presplit``
    / ``just.salt_buckets``, so USERDATA-only clients get the same
    options.  Validation of the ranges lives in :class:`KVTable`.
    """
    if not userdata:
        return 0, 0
    try:
        presplit = int(userdata.get("just.presplit", 0))
        salt_buckets = int(userdata.get("just.salt_buckets", 0))
    except (TypeError, ValueError) as exc:
        raise SchemaError(
            f"just.presplit / just.salt_buckets must be integers: "
            f"{exc}") from None
    return presplit, salt_buckets


def _attribute_fields(userdata: dict | None) -> list[str] | None:
    """Parse USERDATA {'just.attribute.indices': 'name,oid'}; None means
    "use the table type's default"."""
    if not userdata or "just.attribute.indices" not in userdata:
        return None
    return [f.strip() for f in
            userdata["just.attribute.indices"].split(",") if f.strip()]


# -- schema inference for STORE VIEW -----------------------------------------------

_INFER_ORDER = [
    (bool, FieldType.BOOLEAN),
    (int, FieldType.LONG),
    (float, FieldType.DOUBLE),
    (str, FieldType.STRING),
    (Point, FieldType.POINT),
    (LineString, FieldType.LINESTRING),
    (Polygon, FieldType.POLYGON),
    (Geometry, FieldType.GEOMETRY),
    (STSeries, FieldType.ST_SERIES),
    (TSeries, FieldType.T_SERIES),
]


def infer_schema(rows: list[dict], columns: list[str]) -> Schema:
    """Infer a stored-table schema from view rows.

    Numeric columns named like timestamps (``time``/``*_time``/``date``)
    become DATE so the inferred table gets a temporal index.  When no
    column is a usable primary key, a synthetic ``fid`` column is added.
    """
    if not rows:
        raise ExecutionError("cannot infer a schema from an empty view")
    fields: list[Field] = []
    for column in columns:
        sample = next((r[column] for r in rows
                       if r.get(column) is not None), None)
        if sample is None:
            fields.append(Field(column, FieldType.STRING))
            continue
        ftype = None
        for py_type, candidate in _INFER_ORDER:
            if isinstance(sample, py_type):
                ftype = candidate
                break
        if ftype is None:
            raise ExecutionError(
                f"cannot infer field type for column {column!r} "
                f"({type(sample).__name__})")
        lowered = column.lower()
        if ftype in (FieldType.LONG, FieldType.DOUBLE) and (
                lowered == "time" or lowered == "date"
                or lowered.endswith("_time") or lowered.endswith("_date")):
            ftype = FieldType.DATE
        fields.append(Field(column, ftype))
    pk_candidates = [f for f in fields
                     if f.name.lower() in ("fid", "id", "tid", "oid")
                     and f.ftype in (FieldType.STRING, FieldType.LONG,
                                     FieldType.INTEGER)]
    if pk_candidates:
        index = fields.index(pk_candidates[0])
        old = fields[index]
        fields[index] = Field(old.name, old.ftype, primary_key=True)
        return Schema(fields)
    return Schema([Field("fid", FieldType.LONG, primary_key=True)] + fields)


def _coerce_row(row: dict, schema: Schema, synthetic_fid: int) -> dict:
    """Fit a view row into a stored schema (adds a synthetic fid)."""
    out = {}
    for f in schema.fields:
        if f.name in row:
            out[f.name] = row[f.name]
        elif f.name == "fid" and f.primary_key:
            out[f.name] = synthetic_fid
        else:
            out[f.name] = None
    return out
