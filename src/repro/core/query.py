"""Index selection for range queries.

Given a table's configured strategies and a (possibly partial)
spatio-temporal predicate, pick the index the paper's engine would use:

* spatio-temporal predicate  -> Z2T/XZ2T when available, else Z3/XZ3;
* spatial-only predicate     -> Z2/XZ2 when available, else a temporal
  strategy widened to the table's observed time extent;
* temporal-only predicate    -> a temporal strategy widened to the whole
  coordinate space.
"""

from __future__ import annotations

from repro.curves.strategies import STQuery
from repro.errors import ExecutionError
from repro.geometry.envelope import Envelope

#: Preference order when the query has both dimensions.
_ST_PREFERENCE = ("z2t", "xz2t", "z3", "xz3")
#: Preference order when the query is spatial-only.
_S_PREFERENCE = ("z2", "xz2")
_TEMPORAL = ("z2t", "xz2t", "z3", "xz3")


def choose_strategy(table, query: STQuery) -> tuple[str, STQuery]:
    """Pick ``(strategy_name, effective_query)`` for a table and query.

    The effective query may be widened (e.g. a temporal-only query gains
    the world envelope) so the chosen strategy can serve it; exact
    post-filtering still applies the original predicate.
    """
    available = table.strategies

    def first(names):
        for name in names:
            for sname in available:
                if sname == name or sname.startswith(name + ":"):
                    return sname
        return None

    if query.has_spatial and query.has_temporal:
        name = first(_ST_PREFERENCE)
        if name is not None:
            return name, query
        name = first(_S_PREFERENCE)
        if name is not None:
            # Spatial index only: serve the spatial part, post-filter time.
            return name, STQuery(envelope=query.envelope)
    elif query.has_spatial:
        name = first(_S_PREFERENCE)
        if name is not None:
            return name, query
        name = first(_TEMPORAL)
        if name is not None and table.time_extent is not None:
            t_min, t_max = table.time_extent
            return name, STQuery(query.envelope, t_min, t_max)
    elif query.has_temporal:
        name = first(_TEMPORAL)
        if name is not None:
            return name, STQuery(Envelope.world(), query.t_min, query.t_max)

    raise ExecutionError(
        f"table {table.name!r} has no index able to serve {query!r} "
        f"(available: {sorted(available)})")


# ---------------------------------------------------------------------------
# Cost-based planning (Section IX, future work #3)
# ---------------------------------------------------------------------------

def estimate_scan_cost_ms(table, strategy_name: str, query: STQuery,
                          model) -> float:
    """Rough cost of serving ``query`` with one of the table's indexes.

    cost = range-scan seeks (spread over servers)
         + selectivity x index bytes read from disk (parallel).
    This is deliberately the same arithmetic the cost model charges at
    execution time, so the planner optimizes the metric it is judged on.

    When the table carries an ``ANALYZE TABLE`` snapshot
    (``table.stats``), the measured time extent, envelope, index sizes,
    and per-index server spread are used instead of the grow-only
    inline statistics — deletes and shifting hot ranges poison the
    inline extents, and a re-ANALYZE is how the planner recovers.
    """
    strategy = table.strategies[strategy_name]
    if not strategy.supports(query):
        return float("inf")
    num_ranges = len(strategy.ranges(query))
    stats = getattr(table, "stats", None)
    if stats is not None:
        selectivity = strategy.estimate_selectivity(
            query, stats.time_extent, stats.data_envelope)
        index_bytes = stats.index_bytes.get(
            strategy_name, table.index_storage_bytes(strategy_name))
        servers = max(1, stats.index_servers.get(
            strategy_name, table.store.num_servers))
    else:
        selectivity = strategy.estimate_selectivity(
            query, table.time_extent, table.data_envelope)
        index_bytes = table.index_storage_bytes(strategy_name)
        servers = max(1, table.store.num_servers)
    seek_ms = -(-num_ranges // servers) * model.seek_ms
    read_ms = model.disk_read_ms(int(selectivity * index_bytes)) / servers
    return seek_ms + read_ms


def choose_strategy_cost_based(table, query: STQuery,
                               model) -> tuple[str, STQuery]:
    """Pick the cheapest supporting index by estimated cost.

    Falls back to the rule-based choice when no index supports the query
    directly (the rule-based path also handles query widening).
    """
    candidates = []
    for name in table.strategies:
        strategy = table.strategies[name]
        if strategy.supports(query):
            candidates.append(
                (estimate_scan_cost_ms(table, name, query, model), name))
    if not candidates:
        return choose_strategy(table, query)
    candidates.sort()
    return candidates[0][1], query
