"""Table data models: common tables and view tables (Section IV-D).

A common table materializes one key-value store table per configured index
strategy (each holding the full serialized row under that strategy's key,
as GeoMesa does) plus one feature-id table for point lookups and updates.
Because a record's keys never depend on other records, inserts and
historical updates need no index rebuild.
"""

from __future__ import annotations

import time as _time

from repro.cluster.simclock import SimJob
from repro.core.codec import RowCodec
from repro.core.schema import Schema
from repro.curves.strategies import (
    AttributeStrategy,
    IndexedRecord,
    IndexStrategy,
    KeyRange,
    STQuery,
)
from repro.dataframe import DataFrame
from repro.errors import ExecutionError, SchemaError
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.kvstore.scan import ScanSpec
from repro.kvstore.store import KVStore


class CommonTable:
    """A stored table with one or more spatio-temporal indexes."""

    kind = "common"

    def __init__(self, name: str, schema: Schema, store: KVStore,
                 strategies: dict[str, IndexStrategy],
                 compression_enabled: bool = True,
                 attribute_fields: list[str] | None = None,
                 presplit: int = 0, salt_buckets: int = 0):
        if schema.primary_key is None:
            raise SchemaError(f"table {name!r} needs a primary key")
        self.name = name
        self.schema = schema
        self.store = store
        self.strategies = dict(strategies)
        self.codec = RowCodec(schema, compression_enabled)
        # WITH (presplit=N, salt_buckets=K) placement options: the index
        # tables carry the write-hot SFC-clustered keys, so they get
        # both pre-splitting and salting; the id table sees the same
        # insert volume (random fids, no clustering) so it pre-splits
        # without the salting scan tax; attribute indexes stay plain.
        self.presplit = presplit
        self.salt_buckets = salt_buckets
        self._id_table = store.create_table(f"{name}__id",
                                            presplit=presplit)
        self._index_tables = {
            sname: store.create_table(f"{name}__{sname}",
                                      presplit=presplit,
                                      salt_buckets=salt_buckets)
            for sname in strategies
        }
        # Secondary attribute indexes (the "Attribute Indexing" box of
        # Figure 1): one sorted key space per indexed scalar field.
        self.attribute_indexes: dict[str, AttributeStrategy] = {}
        self._attr_tables = {}
        for field_name in attribute_fields or []:
            self.schema.field(field_name)  # validates existence
            self.attribute_indexes[field_name] = AttributeStrategy(
                field_name)
            self._attr_tables[field_name] = store.create_table(
                f"{name}__attr_{field_name}")
        # Data statistics maintained on insert: used by the planner to
        # bound time-only queries and by k-NN to bound the search area.
        # These are grow-only (deletes never shrink the envelope or the
        # time extent); ANALYZE TABLE snapshots measured statistics into
        # ``stats``, which the cost-based planner prefers when present.
        self.row_count = 0
        self.data_envelope: Envelope | None = None
        self.time_extent: tuple[float, float] | None = None
        self.stats = None  # TableStats from the last ANALYZE TABLE

    # -- record projection (overridden by plugin tables) ---------------------
    def record_geometry(self, row: dict) -> Geometry | None:
        field = self.schema.geometry_field
        return row.get(field.name) if field is not None else None

    def record_time_extent(self, row: dict) -> tuple[float, float] | None:
        field = self.schema.time_field
        if field is None:
            return None
        value = row.get(field.name)
        if value is None:
            return None
        return (float(value), float(value))

    def record_envelope(self, row: dict) -> Envelope | None:
        """MBR of the row's geometry — overridable with a cheaper path
        than materializing the full geometry (plugin tables filter
        thousands of rows per query through this)."""
        geometry = self.record_geometry(row)
        return geometry.envelope if geometry is not None else None

    def _indexed_record(self, row: dict) -> IndexedRecord:
        fid = self.schema.fid_of(row)
        geometry = self.record_geometry(row)
        if geometry is None:
            raise SchemaError(
                f"table {self.name!r}: row {fid!r} has no geometry to index")
        extent = self.record_time_extent(row)
        t_min, t_max = extent if extent is not None else (None, None)
        return IndexedRecord(fid, geometry, t_min, t_max)

    # -- write path ------------------------------------------------------------
    def insert_rows(self, rows: list[dict], job: SimJob | None = None) -> int:
        """Insert (or update, by primary key) a batch of rows."""
        written = 0
        encoded_bytes = 0
        for row in rows:
            self.schema.validate_row(row)
            fid = self.schema.fid_of(row)
            record = self._indexed_record(row) if self.strategies else None
            self._delete_existing(fid)
            payload = self.codec.encode_row(row)
            encoded_bytes += len(payload)
            for sname, strategy in self.strategies.items():
                key = strategy.key(record)
                self._index_tables[sname].put(key, payload)
            for field_name, attr in self.attribute_indexes.items():
                value = row.get(field_name)
                if value is not None:
                    self._attr_tables[field_name].put(
                        attr.key_for_value(fid, value), payload)
            self._id_table.put(fid.encode("utf-8"), payload)
            if record is not None:
                self._update_stats(record)
            else:
                self.row_count += 1
            written += 1
        if job is not None:
            puts = written * (len(self.strategies) + 1)
            job.charge_cpu_records(puts,
                                   us_per_record=job.model.kv_put_us)
            job.charge_disk_write(encoded_bytes * (len(self.strategies) + 1))
        return written

    def _update_stats(self, record: IndexedRecord) -> None:
        self.row_count += 1
        env = record.geometry.envelope
        self.data_envelope = env if self.data_envelope is None \
            else self.data_envelope.expand(env)
        if record.t_min is not None:
            t_max = record.t_max if record.t_max is not None else record.t_min
            if self.time_extent is None:
                self.time_extent = (record.t_min, t_max)
            else:
                self.time_extent = (min(self.time_extent[0], record.t_min),
                                    max(self.time_extent[1], t_max))

    def _delete_existing(self, fid: str) -> bool:
        existing = self._id_table.get(fid.encode("utf-8"))
        if existing is None:
            return False
        if self.strategies or self.attribute_indexes:
            old_row = self.codec.decode_row(existing)
            if self.strategies:
                record = self._indexed_record(old_row)
                for sname, strategy in self.strategies.items():
                    self._index_tables[sname].delete(strategy.key(record))
            for field_name, attr in self.attribute_indexes.items():
                value = old_row.get(field_name)
                if value is not None:
                    self._attr_tables[field_name].delete(
                        attr.key_for_value(fid, value))
        self._id_table.delete(fid.encode("utf-8"))
        self.row_count -= 1
        return True

    def delete(self, fid: str) -> bool:
        """Delete one record by feature id; True when it existed."""
        return self._delete_existing(fid)

    def get(self, fid: str, ctx=None,
            job: SimJob | None = None) -> dict | None:
        """Point lookup by feature id.

        With ``job`` the lookup charges the blocks/bytes it actually
        read (one seek, one block unless cached), so a primary-key
        access path reports real I/O instead of appearing free.
        """
        before = self.store.stats.snapshot() if job is not None else None
        payload = self._id_table.get(fid.encode("utf-8"), ctx)
        if job is not None:
            delta = self.store.stats.snapshot().delta(before)
            job.charge_store_scan(delta, num_ranges=1)
        if payload is None:
            return None
        return self.decorate_row(self.codec.decode_row(payload))

    def flush(self) -> None:
        """Flush all memstores (called before storage measurements)."""
        self._id_table.flush()
        for table in self._index_tables.values():
            table.flush()
        for table in self._attr_tables.values():
            table.flush()

    # -- read path ---------------------------------------------------------------
    def decorate_row(self, row: dict) -> dict:
        """Hook for plugin tables to add implicit fields (e.g. ``item``)."""
        return row

    def _matches(self, row: dict, query: STQuery, predicate: str) -> bool:
        if query.has_temporal:
            extent = self.record_time_extent(row)
            if extent is None:
                return False
            t_min, t_max = extent
            if t_max < query.t_min or t_min > query.t_max:
                return False
        if query.envelope is not None:
            envelope = self.record_envelope(row)
            if envelope is not None:
                if predicate == "within":
                    return query.envelope.contains(envelope)
                if not query.envelope.intersects(envelope):
                    return False
                if query.envelope.contains(envelope):
                    return True  # exact test cannot change the answer
                geometry = self.record_geometry(row)
                return geometry.intersects_envelope(query.envelope)
        return True

    def scan_ranges(self, strategy_name: str, ranges: list[KeyRange],
                    job: SimJob | None = None, ctx=None):
        """Raw scan over one index's key ranges, yielding decoded rows.

        ``ctx`` (a :class:`repro.resilience.RequestContext`) propagates
        the statement deadline and partial-results mode into the store's
        region iteration.
        """
        table = self._index_tables[strategy_name]
        before = self.store.stats.snapshot()
        scanned = 0
        for key_range in ranges:
            for _key, payload in table.scan(
                    ScanSpec(key_range.start, key_range.end), ctx):
                scanned += 1
                yield self.codec.decode_row(payload)
        if job is not None:
            delta = self.store.stats.snapshot().delta(before)
            job.charge_store_scan(delta, num_ranges=len(ranges))
            job.charge_cpu_records(scanned)

    def scan_ranges_batches(self, strategy_name: str,
                            ranges: list[KeyRange],
                            job: SimJob | None = None, ctx=None,
                            batch_rows: int | None = None):
        """Batched :meth:`scan_ranges`: yields lists of decoded rows.

        Each yielded list is one key-value batch decoded in a tight
        loop.  Batches fill *across* key-range boundaries — curve
        strategies produce hundreds of small ranges, and chunking each
        range separately would fragment the scan into hundreds of tiny
        batches whose per-batch overhead erases the vectorization win.
        Store I/O and CPU are charged in a ``finally`` so an abandoned
        scan (deadline mid-batch, early consumer exit) still accounts
        exactly for the work it did — with the batched CPU rate, since
        decode here is amortized batch work.
        """
        from repro.kvstore.scan import DEFAULT_BATCH_ROWS, chunk_pairs
        table = self._index_tables[strategy_name]
        before = self.store.stats.snapshot()
        decode = self.codec.decode_row
        scanned = 0
        batches = 0

        def pairs():
            for key_range in ranges:
                yield from table.scan(
                    ScanSpec(key_range.start, key_range.end), ctx)

        try:
            for kv_batch in chunk_pairs(pairs(),
                                        batch_rows or DEFAULT_BATCH_ROWS):
                scanned += len(kv_batch)
                batches += 1
                yield [decode(payload) for _key, payload in kv_batch]
        finally:
            if job is not None:
                delta = self.store.stats.snapshot().delta(before)
                job.charge_store_scan(delta, num_ranges=len(ranges))
                job.charge_cpu_batch(scanned, batches)

    def query(self, query: STQuery, predicate: str = "intersects",
              job: SimJob | None = None,
              strategy_name: str | None = None, ctx=None) -> list[dict]:
        """Index-served range query with exact post-filtering."""
        from repro.core.query import choose_strategy  # avoid import cycle
        if strategy_name is None:
            strategy_name, query = choose_strategy(self, query)
        strategy = self.strategies[strategy_name]
        ranges = strategy.ranges(query)
        out = []
        for row in self.scan_ranges(strategy_name, ranges, job, ctx):
            if self._matches(row, query, predicate):
                out.append(self.decorate_row(row))
        return out

    def query_batches(self, query: STQuery, predicate: str = "intersects",
                      job: SimJob | None = None,
                      strategy_name: str | None = None, ctx=None,
                      batch_rows: int | None = None):
        """Batched :meth:`query`: yields column-major :class:`RowBatch`es.

        Rows flow straight from block decode through the exact
        spatio-temporal post-filter into a columnar batch builder; the
        per-row dict never crosses an operator boundary.
        """
        from repro.core.query import choose_strategy  # avoid import cycle
        from repro.dataframe.batch import DEFAULT_BATCH_ROWS, BatchBuilder
        if strategy_name is None:
            strategy_name, query = choose_strategy(self, query)
        strategy = self.strategies[strategy_name]
        ranges = strategy.ranges(query)
        builder = BatchBuilder(self.columns(),
                               batch_rows or DEFAULT_BATCH_ROWS)
        for rows in self.scan_ranges_batches(strategy_name, ranges, job,
                                             ctx, batch_rows):
            for row in rows:
                if self._matches(row, query, predicate):
                    full = builder.add(self.decorate_row(row))
                    if full is not None:
                        yield full
        tail = builder.take()
        if tail is not None:
            yield tail

    def full_scan_batches(self, job: SimJob | None = None, ctx=None,
                          batch_rows: int | None = None):
        """Batched :meth:`full_scan`: yields :class:`RowBatch`es."""
        from repro.dataframe.batch import DEFAULT_BATCH_ROWS, BatchBuilder
        before = self.store.stats.snapshot()
        decode = self.codec.decode_row
        decorate = self.decorate_row
        builder = BatchBuilder(self.columns(),
                               batch_rows or DEFAULT_BATCH_ROWS)
        scanned = 0
        batches = 0
        try:
            for kv_batch in self._id_table.scan_batches(
                    ScanSpec.full(), ctx, batch_rows):
                scanned += len(kv_batch)
                batches += 1
                for _key, payload in kv_batch:
                    full = builder.add(decorate(decode(payload)))
                    if full is not None:
                        yield full
            tail = builder.take()
            if tail is not None:
                yield tail
        finally:
            if job is not None:
                delta = self.store.stats.snapshot().delta(before)
                job.charge_store_scan(delta, num_ranges=1)
                job.charge_cpu_batch(scanned, batches)

    def _attribute_index(self, field_name: str):
        try:
            return self.attribute_indexes[field_name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no attribute index on "
                f"{field_name!r}") from None

    def attribute_query(self, field_name: str, value,
                        job: SimJob | None = None, ctx=None) -> list[dict]:
        """Equality lookup served by a secondary attribute index."""
        index = self._attribute_index(field_name)
        return self._attribute_ranges(field_name,
                                      index.ranges_for_value(value), job, ctx)

    def attribute_range_query(self, field_name: str, low, high,
                              job: SimJob | None = None,
                              ctx=None) -> list[dict]:
        """BETWEEN lookup served by a secondary attribute index.

        The index range is inclusive; callers post-filter exact bounds.
        """
        index = self._attribute_index(field_name)
        return self._attribute_ranges(
            field_name, index.ranges_for_between(low, high), job, ctx)

    def _attribute_ranges(self, field_name: str,
                          ranges: list[KeyRange],
                          job: SimJob | None, ctx=None) -> list[dict]:
        table = self._attr_tables[field_name]
        before = self.store.stats.snapshot()
        rows = []
        for key_range in ranges:
            for _key, payload in table.scan(
                    ScanSpec(key_range.start, key_range.end), ctx):
                rows.append(self.decorate_row(
                    self.codec.decode_row(payload)))
        if job is not None:
            delta = self.store.stats.snapshot().delta(before)
            job.charge_store_scan(delta, num_ranges=len(ranges))
            job.charge_cpu_records(len(rows))
        return rows

    def full_scan(self, job: SimJob | None = None, ctx=None) -> list[dict]:
        """Every row, via the feature-id table."""
        before = self.store.stats.snapshot()
        rows = []
        for _key, payload in self._id_table.scan(ScanSpec.full(), ctx):
            rows.append(self.decorate_row(self.codec.decode_row(payload)))
        if job is not None:
            delta = self.store.stats.snapshot().delta(before)
            job.charge_store_scan(delta, num_ranges=1)
            job.charge_cpu_records(len(rows))
        return rows

    def to_dataframe(self, job: SimJob | None = None) -> DataFrame:
        return DataFrame.from_rows(self.full_scan(job), self.columns())

    def columns(self) -> list[str]:
        return self.schema.names

    # -- sizing -------------------------------------------------------------------
    def storage_bytes(self, include_memstore: bool = True) -> int:
        """Total storage (keys + values) across all physical tables."""
        tables = ([self._id_table] + list(self._index_tables.values())
                  + list(self._attr_tables.values()))
        if include_memstore:
            return sum(t.total_bytes for t in tables)
        return sum(t.disk_bytes for t in tables)

    def index_storage_bytes(self, strategy_name: str) -> int:
        return self._index_tables[strategy_name].total_bytes

    def drop_storage(self) -> None:
        """Remove the physical key-value tables backing this table."""
        self.store.drop_table(f"{self.name}__id")
        for sname in self.strategies:
            self.store.drop_table(f"{self.name}__{sname}")
        for field_name in self._attr_tables:
            self.store.drop_table(f"{self.name}__attr_{field_name}")


class ViewTable:
    """An in-memory cached query result ("one query, multiple usages")."""

    kind = "view"

    def __init__(self, name: str, dataframe: DataFrame,
                 owner: str | None = None):
        self.name = name
        self.dataframe = dataframe
        self.owner = owner
        self.created_at = _time.monotonic()
        self.last_used_at = self.created_at

    def touch(self) -> None:
        self.last_used_at = _time.monotonic()

    def columns(self) -> list[str]:
        return list(self.dataframe.columns)

    @property
    def row_count(self) -> int:
        return self.dataframe.count()

    def describe(self) -> list[dict]:
        return [{"field": c, "type": "view column", "flags": ""}
                for c in self.dataframe.columns]

    def estimated_bytes(self) -> int:
        return self.dataframe.estimated_bytes()


def require_view(obj) -> ViewTable:
    if not isinstance(obj, ViewTable):
        raise ExecutionError(f"{obj!r} is not a view")
    return obj
