"""Plugin tables (Section IV-D): predefined schemas + implicit ``item``.

A plugin table fixes the storage schema and default indexes for a known
data structure so applications reuse it instead of redefining it.  Rows of
a plugin table are complete entities: the implicit ``item`` field
materializes the whole object (here a :class:`Trajectory`) so analysis
operations such as map matching can consume it directly.
"""

from __future__ import annotations

from repro.core.schema import Field, FieldType, Schema
from repro.core.tables import CommonTable
from repro.cluster.simclock import SimJob
from repro.errors import SchemaError
from repro.geometry.base import Geometry
from repro.geometry.point import Point
from repro.trajectory.model import STSeries, Trajectory

#: Fields of the trajectory plugin table (Figure 6): MBR and endpoints are
#: derivable from the GPS list, so storage keeps identity, time extent and
#: the (compressed) GPS list, plus the start/end points the figure shows.
TRAJECTORY_SCHEMA = Schema([
    Field("tid", FieldType.STRING, primary_key=True),
    Field("oid", FieldType.STRING),
    Field("start_time", FieldType.DATE),
    Field("end_time", FieldType.DATE),
    Field("start_point", FieldType.POINT),
    Field("end_point", FieldType.POINT),
    Field("gps_list", FieldType.ST_SERIES, compress="gzip"),
])


class TrajectoryPlugin(CommonTable):
    """The ``CREATE TABLE <name> AS trajectory`` plugin table.

    Ships with a secondary attribute index on ``oid`` so the
    TrajMesa-style ID query ("all trajectories of lorry X") is an index
    scan rather than a full scan.
    """

    kind = "plugin"
    plugin_type = "trajectory"

    def __init__(self, name, store, strategies,
                 compression_enabled: bool = True,
                 attribute_fields: list[str] | None = None,
                 presplit: int = 0, salt_buckets: int = 0):
        super().__init__(name, TRAJECTORY_SCHEMA, store, strategies,
                         compression_enabled,
                         attribute_fields=attribute_fields
                         if attribute_fields is not None else ["oid"],
                         presplit=presplit, salt_buckets=salt_buckets)

    def trajectories_of(self, oid: str, job=None) -> list[dict]:
        """All trajectories of one moving object (the ID query)."""
        return self.attribute_query("oid", oid, job)

    # The index-relevant geometry is the GPS polyline, not a stored column.
    def record_geometry(self, row: dict) -> Geometry | None:
        series: STSeries | None = row.get("gps_list")
        if series is None or len(series) == 0:
            return None
        if len(series) == 1:
            p = series[0]
            return Point(p.lng, p.lat)
        return series.as_linestring()

    def record_time_extent(self, row: dict) -> tuple[float, float] | None:
        start = row.get("start_time")
        end = row.get("end_time")
        if start is None or end is None:
            return None
        return (float(start), float(end))

    def record_envelope(self, row: dict):
        """The GPS list's cached MBR, without building a LineString."""
        series = row.get("gps_list")
        if series is None or len(series) == 0:
            return None
        return series.envelope

    def decorate_row(self, row: dict) -> dict:
        """Attach the implicit ``item`` field: the full Trajectory."""
        series = row.get("gps_list")
        if series is not None:
            row = dict(row)
            row["item"] = Trajectory(row["tid"], row.get("oid") or "",
                                     series)
        return row

    def columns(self) -> list[str]:
        return self.schema.names + ["item"]

    # -- convenience API ------------------------------------------------------
    @staticmethod
    def row_of(trajectory: Trajectory) -> dict:
        """The storage row for a trajectory entity."""
        series = trajectory.series
        start, end = series.points[0], series.points[-1]
        return {
            "tid": trajectory.tid,
            "oid": trajectory.oid,
            "start_time": trajectory.start_time,
            "end_time": trajectory.end_time,
            "start_point": Point(start.lng, start.lat),
            "end_point": Point(end.lng, end.lat),
            "gps_list": series,
        }

    def insert_trajectories(self, trajectories: list[Trajectory],
                            job: SimJob | None = None) -> int:
        return self.insert_rows([self.row_of(t) for t in trajectories], job)


#: Fields of the geofence plugin table: a polygon with a validity window
#: (Section IX future work #2 — "more spatio-temporal data types as
#: plugin tables").  Urban geofences back delivery zones, no-parking
#: areas, and event perimeters; XZ2T over (area, valid_from..valid_to)
#: answers "which fences applied here, then".
GEOFENCE_SCHEMA = Schema([
    Field("gid", FieldType.STRING, primary_key=True),
    Field("name", FieldType.STRING),
    Field("category", FieldType.STRING),
    Field("valid_from", FieldType.DATE),
    Field("valid_to", FieldType.DATE),
    Field("area", FieldType.POLYGON),
])


class GeofencePlugin(CommonTable):
    """The ``CREATE TABLE <name> AS geofence`` plugin table."""

    kind = "plugin"
    plugin_type = "geofence"

    def __init__(self, name, store, strategies,
                 compression_enabled: bool = True,
                 attribute_fields: list[str] | None = None,
                 presplit: int = 0, salt_buckets: int = 0):
        super().__init__(name, GEOFENCE_SCHEMA, store, strategies,
                         compression_enabled,
                         attribute_fields=attribute_fields
                         if attribute_fields is not None
                         else ["category"],
                         presplit=presplit, salt_buckets=salt_buckets)

    def record_time_extent(self, row: dict) -> tuple[float, float] | None:
        valid_from = row.get("valid_from")
        valid_to = row.get("valid_to")
        if valid_from is None or valid_to is None:
            return None
        return (float(valid_from), float(valid_to))

    def decorate_row(self, row: dict) -> dict:
        """Attach the implicit ``item``: the fence polygon itself."""
        if row.get("area") is not None:
            row = dict(row)
            row["item"] = row["area"]
        return row

    def columns(self) -> list[str]:
        return self.schema.names + ["item"]

    def active_fences(self, lng: float, lat: float, at_time: float,
                      job=None) -> list[dict]:
        """Fences whose polygon contains the point and whose validity
        window covers ``at_time`` (the geofencing hit test)."""
        from repro.curves.strategies import STQuery
        from repro.geometry.envelope import Envelope
        probe = STQuery(Envelope.of_point(lng, lat).buffer(1e-9, 1e-9),
                        at_time, at_time)
        hits = self.query(probe, predicate="intersects", job=job)
        return [row for row in hits
                if row["area"].contains_point(lng, lat)]


#: Registry of plugin table types by JustQL name.
PLUGIN_TYPES: dict[str, type] = {
    "trajectory": TrajectoryPlugin,
    "geofence": GeofencePlugin,
}


def plugin_class(name: str) -> type:
    try:
        return PLUGIN_TYPES[name.lower()]
    except KeyError:
        valid = ", ".join(sorted(PLUGIN_TYPES))
        raise SchemaError(
            f"unknown plugin table type {name!r}; expected one of {valid}"
        ) from None
