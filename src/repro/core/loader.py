"""Data-source loaders and LOAD-statement field mapping (Section V-B).

Supports the paper's file sources (CSV, GeoJSON, GPX, KML) plus
"hive-like" external sources: any iterable of dict rows registered with
the engine under a name, addressable as ``hive:<name>`` in LOAD
statements.  The CONFIG mapping uses the paper's preset transform
functions (``lng_lat_to_point``, ``long_to_date_ms``, ...) to convert
source columns into JUST field values.
"""

from __future__ import annotations

import csv
import json
import re
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Callable, Iterable

from repro.errors import ExecutionError, SchemaError
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.wkt import from_wkt
from repro.trajectory.model import STSeries


# -- transform functions ------------------------------------------------------

def _lng_lat_to_point(lng, lat) -> Point:
    return Point(float(lng), float(lat))


def _long_to_date_ms(value) -> float:
    return float(value) / 1000.0


def _long_to_date_s(value) -> float:
    return float(value)


def _st_series_from_json(value) -> STSeries:
    """Parse ``[[lng, lat, t], ...]`` JSON text into an st_series."""
    data = json.loads(value) if isinstance(value, str) else value
    return STSeries([(float(p[0]), float(p[1]), float(p[2])) for p in data])


TRANSFORMS: dict[str, Callable] = {
    "lng_lat_to_point": _lng_lat_to_point,
    "long_to_date_ms": _long_to_date_ms,
    "long_to_date_s": _long_to_date_s,
    "wkt_to_geom": lambda v: from_wkt(v),
    "to_int": lambda v: int(float(v)),
    "to_long": lambda v: int(float(v)),
    "to_double": lambda v: float(v),
    "to_string": lambda v: str(v),
    "to_bool": lambda v: str(v).strip().lower() in ("1", "true", "t", "yes"),
    "st_series_from_json": _st_series_from_json,
}

_CALL_RE = re.compile(r"^\s*(\w+)\s*\(\s*([^)]*)\s*\)\s*$")


def apply_config(source_row: dict, config: dict[str, str]) -> dict:
    """Map one source row through a LOAD CONFIG field mapping.

    Each config value is either a bare source column name or a transform
    call over source columns, e.g. ``'lng_lat_to_point(lng, lat)'``.
    """
    out = {}
    for target, expression in config.items():
        match = _CALL_RE.match(expression)
        if match:
            fn_name, args_text = match.groups()
            try:
                fn = TRANSFORMS[fn_name]
            except KeyError:
                valid = ", ".join(sorted(TRANSFORMS))
                raise ExecutionError(
                    f"unknown LOAD transform {fn_name!r}; expected one of "
                    f"{valid}") from None
            args = [a.strip() for a in args_text.split(",") if a.strip()]
            values = []
            for arg in args:
                if arg not in source_row:
                    raise ExecutionError(
                        f"LOAD transform references missing source column "
                        f"{arg!r}")
                values.append(source_row[arg])
            out[target] = fn(*values)
        else:
            column = expression.strip()
            if column not in source_row:
                raise ExecutionError(
                    f"LOAD mapping references missing source column "
                    f"{column!r}")
            out[target] = source_row[column]
    return out


# -- file sources ----------------------------------------------------------------

def load_csv(path: str | Path, delimiter: str = ",") -> list[dict]:
    """Read a headered CSV into string-valued dict rows."""
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.DictReader(handle, delimiter=delimiter))


def load_geojson(path: str | Path) -> list[dict]:
    """Read a GeoJSON FeatureCollection into rows.

    Each row carries the feature's properties plus a ``geometry`` object.
    """
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("type") != "FeatureCollection":
        raise ExecutionError("GeoJSON source must be a FeatureCollection")
    rows = []
    for feature in doc.get("features", []):
        row = dict(feature.get("properties") or {})
        row["geometry"] = _geojson_geometry(feature.get("geometry"))
        rows.append(row)
    return rows


def _geojson_geometry(geometry: dict | None):
    if geometry is None:
        return None
    gtype = geometry.get("type")
    coords = geometry.get("coordinates")
    if gtype == "Point":
        return Point(coords[0], coords[1])
    if gtype == "LineString":
        return LineString(coords)
    if gtype == "Polygon":
        return Polygon(coords[0])
    raise SchemaError(f"unsupported GeoJSON geometry type {gtype!r}")


def _strip_ns(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def load_gpx(path: str | Path) -> list[dict]:
    """Read GPX track points into ``(track, lng, lat, time)`` rows.

    GPX timestamps are ISO-8601; they are converted to epoch seconds.
    """
    from datetime import datetime, timezone

    tree = ET.parse(path)
    rows = []
    track_index = 0
    for element in tree.iter():
        if _strip_ns(element.tag) == "trk":
            track_index += 1
            for point in element.iter():
                if _strip_ns(point.tag) != "trkpt":
                    continue
                time_text = None
                for child in point:
                    if _strip_ns(child.tag) == "time":
                        time_text = child.text
                epoch = None
                if time_text:
                    parsed = datetime.fromisoformat(
                        time_text.replace("Z", "+00:00"))
                    if parsed.tzinfo is None:
                        parsed = parsed.replace(tzinfo=timezone.utc)
                    epoch = parsed.timestamp()
                rows.append({
                    "track": str(track_index),
                    "lng": float(point.get("lon")),
                    "lat": float(point.get("lat")),
                    "time": epoch,
                })
    return rows


def load_kml(path: str | Path) -> list[dict]:
    """Read KML Placemarks into ``(name, geometry)`` rows."""
    tree = ET.parse(path)
    rows = []
    for element in tree.iter():
        if _strip_ns(element.tag) != "Placemark":
            continue
        name = None
        geometry = None
        for child in element.iter():
            tag = _strip_ns(child.tag)
            if tag == "name" and name is None:
                name = (child.text or "").strip()
            elif tag in ("Point", "LineString", "Polygon"):
                geometry = _kml_geometry(tag, child)
        rows.append({"name": name, "geometry": geometry})
    return rows


def _kml_coordinates(element) -> list[tuple[float, float]]:
    for child in element.iter():
        if _strip_ns(child.tag) == "coordinates":
            coords = []
            for token in (child.text or "").split():
                parts = token.split(",")
                coords.append((float(parts[0]), float(parts[1])))
            return coords
    raise SchemaError("KML geometry without coordinates")


def _kml_geometry(tag: str, element):
    coords = _kml_coordinates(element)
    if tag == "Point":
        return Point(*coords[0])
    if tag == "LineString":
        return LineString(coords)
    return Polygon(coords)


FILE_LOADERS: dict[str, Callable[[str], list[dict]]] = {
    "csv": load_csv,
    "geojson": load_geojson,
    "gpx": load_gpx,
    "kml": load_kml,
}


def load_file(path: str | Path, fmt: str | None = None) -> list[dict]:
    """Load any supported file format (inferred from the extension)."""
    path = Path(path)
    fmt = (fmt or path.suffix.lstrip(".")).lower()
    if fmt == "json":
        fmt = "geojson"
    try:
        loader = FILE_LOADERS[fmt]
    except KeyError:
        valid = ", ".join(sorted(FILE_LOADERS))
        raise ExecutionError(
            f"unsupported file format {fmt!r}; expected one of {valid}"
        ) from None
    return loader(path)


class SourceRegistry:
    """Named external sources (the engine's stand-in for Hive/HBase)."""

    def __init__(self) -> None:
        self._sources: dict[str, list[dict]] = {}

    def register(self, name: str, rows: Iterable[dict]) -> None:
        self._sources[name] = list(rows)

    def rows(self, name: str) -> list[dict]:
        try:
            return self._sources[name]
        except KeyError:
            raise ExecutionError(
                f"unknown external source {name!r}; register it with "
                f"engine.register_source()") from None

    def names(self) -> list[str]:
        return sorted(self._sources)
