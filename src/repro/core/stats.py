"""Measured table statistics for the cost-based planner (``ANALYZE TABLE``).

The statistics a :class:`~repro.core.tables.CommonTable` maintains inline
(``row_count``, ``data_envelope``, ``time_extent``) are grow-only:
deletes decrement the row count but cannot shrink the envelope or the
time extent, so a table whose hot range moved — or that had outliers
deleted — keeps planning against a stale, over-wide picture.  ``ANALYZE
TABLE`` rescans the live rows and snapshots *measured* statistics into a
:class:`TableStats`, which :func:`~repro.core.query.estimate_scan_cost_ms`
prefers over the inline guesses (the AeroMesa / PostgreSQL ``ANALYZE``
role).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.envelope import Envelope


@dataclass
class RegionDistribution:
    """Key-distribution of one physical region of the feature-id table."""

    region_id: int
    server: int
    entries: int
    bytes: int

    def as_dict(self) -> dict:
        return {"region_id": self.region_id, "server": self.server,
                "entries": self.entries, "bytes": self.bytes}


@dataclass
class TableStats:
    """One ``ANALYZE TABLE`` snapshot."""

    table: str
    row_count: int = 0
    data_envelope: Envelope | None = None
    time_extent: tuple[float, float] | None = None
    #: Measured index storage, per strategy name.
    index_bytes: dict[str, int] = field(default_factory=dict)
    #: Distinct servers hosting each index's regions (scan parallelism).
    index_servers: dict[str, int] = field(default_factory=dict)
    #: Per-region live-entry distribution of the feature-id table.
    distribution: list[RegionDistribution] = field(default_factory=list)
    #: Simulated clock at snapshot time.
    analyzed_at_ms: float = 0.0

    def as_dict(self) -> dict:
        return {
            "table": self.table,
            "row_count": self.row_count,
            "data_envelope": None if self.data_envelope is None
            else [self.data_envelope.min_lng, self.data_envelope.min_lat,
                  self.data_envelope.max_lng, self.data_envelope.max_lat],
            "time_extent": None if self.time_extent is None
            else list(self.time_extent),
            "index_bytes": dict(self.index_bytes),
            "index_servers": dict(self.index_servers),
            "distribution": [d.as_dict() for d in self.distribution],
            "analyzed_at_ms": self.analyzed_at_ms,
        }


def collect_table_stats(table, job=None, ctx=None,
                        now_ms: float = 0.0) -> TableStats:
    """Measure a table's statistics from its live rows.

    Performs a full scan of the feature-id table (charged to ``job``
    like any query), recomputes the envelope / time extent from what is
    actually stored, and records per-index storage and the per-region
    key distribution.
    """
    stats = TableStats(table=table.name, analyzed_at_ms=now_ms)
    envelope: Envelope | None = None
    extent: tuple[float, float] | None = None
    count = 0
    for row in table.full_scan(job, ctx):
        count += 1
        env = table.record_envelope(row)
        if env is not None:
            envelope = env if envelope is None else envelope.expand(env)
        row_extent = table.record_time_extent(row)
        if row_extent is not None:
            if extent is None:
                extent = row_extent
            else:
                extent = (min(extent[0], row_extent[0]),
                          max(extent[1], row_extent[1]))
    stats.row_count = count
    stats.data_envelope = envelope
    stats.time_extent = extent
    for sname in table.strategies:
        stats.index_bytes[sname] = table.index_storage_bytes(sname)
        stats.index_servers[sname] = max(
            1, len(table._index_tables[sname].servers_used()))
    for region in table._id_table.regions():
        stats.distribution.append(RegionDistribution(
            region_id=region.region_id, server=region.server,
            entries=len(region.all_entries()),
            bytes=region.total_bytes))
    return stats
