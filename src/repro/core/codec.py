"""Row serialization and the field compression mechanism (Section IV-D).

Rows are serialized field-by-field in schema order.  Fields declared with
``compress=gzip`` or ``compress=zip`` have their serialized bytes run
through the codec before storage — the paper's observation is that this
pays off only for big fields (the trajectory ``gpsList``), while tiny
fields can *grow* under compression (Figure 10a's ``JUSTcompress`` line);
both behaviours fall out of real codecs here.

``st_series`` values use fixed-point delta encoding (1e-6 degree ticks,
millisecond timestamps), which is byte-efficient on its own and leaves the
long runs of small deltas that DEFLATE then shrinks several-fold.
"""

from __future__ import annotations

import gzip as _gzip
import struct
import zlib

from repro.errors import SchemaError
from repro.core.schema import FieldType, Schema
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.trajectory.model import GPSPoint, STSeries, TSeries

_FLAG_NULL = 0
_FLAG_PLAIN = 1
_FLAG_COMPRESSED = 2

_GEOM_TAGS = {Point: 0, LineString: 1, Polygon: 2}
_I32_MIN, _I32_MAX = -(1 << 31), (1 << 31) - 1


# -- varints ----------------------------------------------------------------

def write_varint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise SchemaError("varint cannot encode negatives")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint; returns ``(value, new_pos)``."""
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


# -- compression codecs -------------------------------------------------------

def compress_bytes(data: bytes, method: str) -> bytes:
    if method == "gzip":
        return _gzip.compress(data, compresslevel=6)
    if method == "zip":
        return zlib.compress(data, level=6)
    raise SchemaError(f"unknown compression method {method!r}")


def decompress_bytes(data: bytes, method: str) -> bytes:
    if method == "gzip":
        return _gzip.decompress(data)
    if method == "zip":
        return zlib.decompress(data)
    raise SchemaError(f"unknown compression method {method!r}")


# -- per-type value encodings --------------------------------------------------

def _encode_st_series(series: STSeries) -> bytes:
    points = series.points
    out = bytearray()
    write_varint(len(points), out)
    if not points:
        return bytes(out)
    fixed = [(round(p.lng * 1e6), round(p.lat * 1e6),
              round(p.time * 1000.0)) for p in points]
    deltas_fit = all(
        _I32_MIN <= b[i] - a[i] <= _I32_MAX
        for a, b in zip(fixed, fixed[1:]) for i in range(3))
    if deltas_fit:
        out.append(0)  # delta layout
        out += struct.pack(">iiq", fixed[0][0], fixed[0][1], fixed[0][2])
        for prev, cur in zip(fixed, fixed[1:]):
            out += struct.pack(">iii", cur[0] - prev[0], cur[1] - prev[1],
                               cur[2] - prev[2])
    else:
        out.append(1)  # absolute layout
        for lng6, lat6, t_ms in fixed:
            out += struct.pack(">iiq", lng6, lat6, t_ms)
    return bytes(out)


def _decode_st_series(data: bytes) -> STSeries:
    count, pos = read_varint(data, 0)
    if count == 0:
        return STSeries([])
    layout = data[pos]
    pos += 1
    points = []
    if layout == 0:
        lng6, lat6, t_ms = struct.unpack_from(">iiq", data, pos)
        pos += 16
        points.append(GPSPoint(lng6 / 1e6, lat6 / 1e6, t_ms / 1000.0))
        for _ in range(count - 1):
            dlng, dlat, dt = struct.unpack_from(">iii", data, pos)
            pos += 12
            lng6 += dlng
            lat6 += dlat
            t_ms += dt
            points.append(GPSPoint(lng6 / 1e6, lat6 / 1e6, t_ms / 1000.0))
    else:
        for _ in range(count):
            lng6, lat6, t_ms = struct.unpack_from(">iiq", data, pos)
            pos += 16
            points.append(GPSPoint(lng6 / 1e6, lat6 / 1e6, t_ms / 1000.0))
    return STSeries(points)


def _encode_coords(coords) -> bytes:
    out = bytearray(struct.pack(">I", len(coords)))
    for lng, lat in coords:
        out += struct.pack(">dd", lng, lat)
    return bytes(out)


def _decode_coords(data: bytes, pos: int = 0):
    (count,) = struct.unpack_from(">I", data, pos)
    pos += 4
    coords = []
    for _ in range(count):
        lng, lat = struct.unpack_from(">dd", data, pos)
        pos += 16
        coords.append((lng, lat))
    return coords


def encode_value(value, ftype: FieldType) -> bytes:
    """Serialize one non-null value of the given type."""
    if ftype in (FieldType.INTEGER, FieldType.LONG):
        return struct.pack(">q", value)
    if ftype in (FieldType.DOUBLE, FieldType.DATE):
        return struct.pack(">d", float(value))
    if ftype == FieldType.STRING:
        return value.encode("utf-8")
    if ftype == FieldType.BOOLEAN:
        return b"\x01" if value else b"\x00"
    if ftype == FieldType.POINT:
        return struct.pack(">dd", value.lng, value.lat)
    if ftype == FieldType.LINESTRING:
        return _encode_coords(value.coords)
    if ftype == FieldType.POLYGON:
        return _encode_coords(value.ring)
    if ftype == FieldType.GEOMETRY:
        tag = _GEOM_TAGS[type(value)]
        inner_type = (FieldType.POINT, FieldType.LINESTRING,
                      FieldType.POLYGON)[tag]
        return bytes([tag]) + encode_value(value, inner_type)
    if ftype == FieldType.ST_SERIES:
        return _encode_st_series(value)
    if ftype == FieldType.T_SERIES:
        out = bytearray(struct.pack(">I", len(value)))
        for t, v in value:
            out += struct.pack(">dd", t, v)
        return bytes(out)
    raise SchemaError(f"cannot encode type {ftype}")


def decode_value(data: bytes, ftype: FieldType):
    """Inverse of :func:`encode_value`."""
    if ftype in (FieldType.INTEGER, FieldType.LONG):
        return struct.unpack(">q", data)[0]
    if ftype in (FieldType.DOUBLE, FieldType.DATE):
        return struct.unpack(">d", data)[0]
    if ftype == FieldType.STRING:
        return data.decode("utf-8")
    if ftype == FieldType.BOOLEAN:
        return data == b"\x01"
    if ftype == FieldType.POINT:
        lng, lat = struct.unpack(">dd", data)
        return Point(lng, lat)
    if ftype == FieldType.LINESTRING:
        return LineString(_decode_coords(data))
    if ftype == FieldType.POLYGON:
        return Polygon(_decode_coords(data))
    if ftype == FieldType.GEOMETRY:
        inner_type = (FieldType.POINT, FieldType.LINESTRING,
                      FieldType.POLYGON)[data[0]]
        return decode_value(data[1:], inner_type)
    if ftype == FieldType.ST_SERIES:
        return _decode_st_series(data)
    if ftype == FieldType.T_SERIES:
        (count,) = struct.unpack_from(">I", data, 0)
        pos = 4
        samples = []
        for _ in range(count):
            t, v = struct.unpack_from(">dd", data, pos)
            pos += 16
            samples.append((t, v))
        return TSeries(samples)
    raise SchemaError(f"cannot decode type {ftype}")


# -- row codec -----------------------------------------------------------------

class RowCodec:
    """Serializes full rows against a schema, honouring field compression.

    ``compression_enabled=False`` produces the paper's ``JUSTnc`` variant:
    the same layout with every field stored plain.
    """

    def __init__(self, schema: Schema, compression_enabled: bool = True):
        self.schema = schema
        self.compression_enabled = compression_enabled

    def encode_row(self, row: dict) -> bytes:
        out = bytearray()
        for f in self.schema.fields:
            value = row.get(f.name)
            if value is None:
                out.append(_FLAG_NULL)
                continue
            payload = encode_value(value, f.ftype)
            if self.compression_enabled and f.compress != "none":
                compressed = compress_bytes(payload, f.compress)
                out.append(_FLAG_COMPRESSED)
                write_varint(len(compressed), out)
                out += compressed
            else:
                out.append(_FLAG_PLAIN)
                write_varint(len(payload), out)
                out += payload
        return bytes(out)

    def decode_row(self, data: bytes) -> dict:
        row: dict = {}
        pos = 0
        for f in self.schema.fields:
            flag = data[pos]
            pos += 1
            if flag == _FLAG_NULL:
                row[f.name] = None
                continue
            length, pos = read_varint(data, pos)
            payload = data[pos:pos + length]
            pos += length
            if flag == _FLAG_COMPRESSED:
                payload = decompress_bytes(payload, f.compress)
            row[f.name] = decode_value(payload, f.ftype)
        return row
