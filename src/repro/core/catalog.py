"""The meta table (Section IV-D).

The paper stores table metadata in MySQL for transactional updates and
fast listing; this catalog reproduces that role in-process.  It records,
per table: kind (common/plugin), schema, index configuration, and creation
order.  Views are session-level objects and live in the service layer, not
here — matching the paper, where views vanish when sessions time out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.schema import Schema
from repro.errors import TableExistsError, TableNotFoundError


@dataclass
class TableMeta:
    """One row of the meta table."""

    name: str
    kind: str                      # "common", "plugin", or "system"
    schema: Schema
    index_names: list[str]
    plugin_type: str | None = None
    userdata: dict = field(default_factory=dict)
    sequence: int = 0


class Catalog:
    """CRUD over table metadata with unique-name enforcement."""

    def __init__(self) -> None:
        self._tables: dict[str, TableMeta] = {}
        self._sequence = itertools.count(1)

    def create(self, meta: TableMeta) -> None:
        if meta.name in self._tables:
            raise TableExistsError(meta.name)
        meta.sequence = next(self._sequence)
        self._tables[meta.name] = meta

    def replace(self, meta: TableMeta) -> None:
        """Create-or-replace, keeping the original creation order.

        Used by the read-only ``sys.*`` system tables, whose providers
        are re-registered when the service layer wraps the engine;
        user tables go through :meth:`create` and stay unique-name
        enforced.
        """
        existing = self._tables.get(meta.name)
        meta.sequence = existing.sequence if existing is not None \
            else next(self._sequence)
        self._tables[meta.name] = meta

    def drop(self, name: str) -> TableMeta:
        try:
            return self._tables.pop(name)
        except KeyError:
            raise TableNotFoundError(name) from None

    def get(self, name: str) -> TableMeta:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def exists(self, name: str) -> bool:
        return name in self._tables

    def list_tables(self, prefix: str = "") -> list[TableMeta]:
        """Metadata rows sorted by creation order (SHOW TABLES)."""
        rows = [m for m in self._tables.values()
                if m.name.startswith(prefix)]
        return sorted(rows, key=lambda m: m.sequence)

    def describe(self, name: str) -> list[dict]:
        """Field rows for DESC TABLE."""
        return self.get(name).schema.describe()
