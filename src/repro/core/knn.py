"""k-NN query (Algorithm 1 of the paper).

The spatial range query is the building block: the search space is split
into areas kept in a priority queue ordered by their minimum distance to
the query point; areas are recursively quartered until smaller than the
system parameter ``g`` (1 km x 1 km), at which point a range query fetches
their records.  Expansion stops when the nearest unexplored area is
farther than the current k-th nearest record (Lemma 1, "area pruning").
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.cluster.simclock import SimJob
from repro.curves.strategies import STQuery
from repro.errors import ExecutionError
from repro.geometry.distance import euclidean_distance, km_to_degrees
from repro.geometry.envelope import Envelope

#: Minimum queried area side (the ``g`` of Algorithm 1), in km.
DEFAULT_MIN_CELL_KM = 1.0


@dataclass
class KNNResult:
    """Rows ordered nearest-first plus search diagnostics."""

    rows: list[dict]
    distances: list[float]
    areas_queried: int
    areas_pruned: int


def knn_query(table, lng: float, lat: float, k: int,
              job: SimJob | None = None,
              min_cell_km: float = DEFAULT_MIN_CELL_KM,
              search_area: Envelope | None = None) -> KNNResult:
    """Algorithm 1: k nearest records to ``(lng, lat)`` in ``table``.

    Distances are planar (degree-space) Euclidean, as in the paper.
    ``search_area`` defaults to the table's observed data envelope
    (falling back to the world) and bounds the expansion.
    """
    if k <= 0:
        raise ExecutionError("k must be positive")
    if search_area is None:
        search_area = table.data_envelope or Envelope.world()
        # Grow slightly so boundary records are not clipped away.
        search_area = search_area.buffer(1e-9, 1e-9)
    g_degrees = km_to_degrees(min_cell_km)

    counter = itertools.count()
    # cq: max-heap of size k over candidate records -> store (-distance, n).
    cq: list[tuple[float, int, dict]] = []
    # aq: min-heap of areas ordered by dA(q, a).
    aq: list[tuple[float, int, Envelope]] = []
    heapq.heappush(aq, (search_area.min_distance_to_point(lng, lat),
                        next(counter), search_area))

    seen_fids: set[str] = set()
    areas_queried = 0
    areas_pruned = 0

    def dmax() -> float:
        return -cq[0][0] if len(cq) >= k else float("inf")

    while aq:
        d_area, _n, area = heapq.heappop(aq)
        if len(cq) == k and d_area > dmax():
            areas_pruned += 1 + len(aq)
            break  # Lemma 1: no remaining area can improve the result
        if area.width > g_degrees or area.height > g_degrees:
            for child in area.quadrants():
                heapq.heappush(
                    aq, (child.min_distance_to_point(lng, lat),
                         next(counter), child))
            continue
        areas_queried += 1
        rows = table.query(STQuery(envelope=area), predicate="intersects",
                           job=job)
        for row in rows:
            fid = table.schema.fid_of(row)
            if fid in seen_fids:
                continue  # areas share closed boundaries
            seen_fids.add(fid)
            env = table.record_envelope(row)
            distance = euclidean_distance(lng, lat, *env.center)
            if len(cq) < k:
                heapq.heappush(cq, (-distance, next(counter), row))
            elif distance < dmax():
                heapq.heapreplace(cq, (-distance, next(counter), row))

    ordered = sorted(cq, key=lambda item: -item[0])
    return KNNResult(
        rows=[row for _d, _n, row in ordered],
        distances=[-d for d, _n, _row in ordered],
        areas_queried=areas_queried,
        areas_pruned=areas_pruned,
    )
