"""Virtual ``sys.*`` system tables (the ``performance_schema`` role).

Each system table is a named, read-only row provider over live engine
state — metrics, regions, catalog, events, slow queries, sessions —
registered in the catalog (kind ``"system"``) so ``SHOW``/``DESC`` see
it, resolved by the SQL analyzer ahead of user-namespace prefixing, and
executed as an in-memory DataFrame scan so WHERE / ORDER BY / LIMIT /
GROUP BY work on it unchanged::

    SELECT * FROM sys.regions ORDER BY read_rate DESC LIMIT 5
    SELECT kind, count(*) FROM sys.events GROUP BY kind

Providers are plain callables returning ``list[dict]``; the engine
installs cluster-level ones at construction and the service layer
re-registers ``sys.sessions`` / ``sys.slow_queries`` with live
server-backed providers when a :class:`~repro.service.server.JustServer`
wraps the engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schema import Field, FieldType, Schema
from repro.observability.metrics import Counter, Gauge, Histogram

#: Column name -> field type, for the catalog schemas of system tables.
_LONG = FieldType.LONG
_DOUBLE = FieldType.DOUBLE
_STRING = FieldType.STRING


@dataclass(frozen=True)
class SystemTable:
    """One virtual table: a name, fixed columns, and a row provider."""

    name: str
    columns: tuple[str, ...]
    provider: object          # () -> list[dict]
    description: str = ""
    types: tuple[FieldType, ...] = ()

    def rows(self) -> list[dict]:
        return self.provider()

    def schema(self) -> Schema:
        types = self.types or tuple(_STRING for _ in self.columns)
        return Schema([Field(name, ftype)
                       for name, ftype in zip(self.columns, types)])


def _metrics_rows(engine) -> list[dict]:
    rows = []
    for key, metric in engine.metrics.items():
        if isinstance(metric, Histogram):
            stats = metric.as_dict()
            rows.append({"name": key, "kind": "histogram",
                         "value": stats["mean"], "count": stats["count"],
                         "sum": stats["sum"], "mean": stats["mean"],
                         "p50": stats["p50"], "p95": stats["p95"],
                         "p99": stats["p99"]})
        else:
            kind = "counter" if isinstance(metric, Counter) else "gauge"
            rows.append({"name": key, "kind": kind, "value": metric.value,
                         "count": None, "sum": None, "mean": None,
                         "p50": None, "p95": None, "p99": None})
    return rows


def _region_rows(engine) -> list[dict]:
    now_ms = engine.events.now_ms
    rows = []
    for kvtable in engine.store.tables():
        for region in kvtable.regions():
            rows.append({
                "table": kvtable.name,
                "region_id": region.region_id,
                "server": region.server,
                "start_key": region.start_key.hex(),
                "end_key": None if region.end_key is None
                else region.end_key.hex(),
                "memstore_bytes": region.memstore.size_bytes,
                "sstable_bytes": region.disk_bytes,
                "sstables": len(region.sstables),
                "reads": region.reads,
                "writes": region.writes,
                "read_rate": round(
                    region.read_rate.rate_per_s(now_ms), 6),
                "write_rate": round(
                    region.write_rate.rate_per_s(now_ms), 6),
            })
    return rows


def _table_rows(engine) -> list[dict]:
    rows = []
    for meta in engine.catalog.list_tables():
        if meta.kind == "system":
            continue
        if meta.kind == "view":
            view = engine._views.get(meta.name)
            if view is None:
                continue
            rows.append({
                "name": meta.name,
                "kind": "materialized_view",
                "plugin_type": None,
                "indexes": "",
                "row_count": view.row_count,
                "regions": 0,
                "storage_bytes": view.estimated_bytes(),
                "analyzed_rows": None,
            })
            continue
        table = engine._tables.get(meta.name)
        if table is None:
            continue
        stats = getattr(table, "stats", None)
        rows.append({
            "name": meta.name,
            "kind": meta.kind,
            "plugin_type": meta.plugin_type,
            "indexes": ",".join(meta.index_names),
            "row_count": table.row_count,
            "regions": sum(t.num_regions
                           for t in _physical_tables(table)),
            "storage_bytes": table.storage_bytes(),
            "analyzed_rows": None if stats is None else stats.row_count,
        })
    return rows


def _physical_tables(table):
    return ([table._id_table] + list(table._index_tables.values())
            + list(table._attr_tables.values()))


def _server_rows(engine) -> list[dict]:
    """One row per region server: state plus aggregated region load.

    The load columns are exactly what the balancer policy aggregates
    (:func:`repro.balancer.policy.server_loads`), so an operator can
    eyeball the same numbers the balancer acts on.
    """
    store = engine.store
    now_ms = engine.events.now_ms
    rows = []
    for server in range(store.num_servers):
        row = {"server": server,
               "state": ("dead" if server in store.dead_servers
                         and server not in store.recovering_servers
                         else "recovering"
                         if server in store.recovering_servers
                         else "alive"),
               "regions": 0, "memstore_bytes": 0, "sstable_bytes": 0,
               "reads": 0, "writes": 0,
               "read_rate": 0.0, "write_rate": 0.0,
               "cache_used_bytes": store.cache_for(server).used_bytes,
               "wal_live_records": 0}
        wal = store.wal_for(server)
        if wal is not None:
            row["wal_live_records"] = wal.live_records
        rows.append(row)
    for kvtable in store.tables():
        for region in kvtable.regions():
            row = rows[region.server]
            row["regions"] += 1
            row["memstore_bytes"] += region.memstore.size_bytes
            row["sstable_bytes"] += region.disk_bytes
            row["reads"] += region.reads
            row["writes"] += region.writes
            row["read_rate"] += region.read_rate.rate_per_s(now_ms)
            row["write_rate"] += region.write_rate.rate_per_s(now_ms)
    for row in rows:
        row["read_rate"] = round(row["read_rate"], 6)
        row["write_rate"] = round(row["write_rate"], 6)
    return rows


def _balancer_rows(engine) -> list[dict]:
    """The balancer's decision history (empty until one is enabled)."""
    balancer = getattr(engine, "balancer", None)
    if balancer is None:
        return []
    return balancer.history_rows()


def _replication_rows(engine) -> list[dict]:
    """One row per region replica (empty until replication is enabled)."""
    replication = engine.store.replication
    if replication is None:
        return []
    return replication.rows()


def _event_rows(engine) -> list[dict]:
    return engine.events.rows()


def _metrics_history_rows(engine) -> list[dict]:
    """Retained scrape points (empty until monitoring is enabled)."""
    monitor = getattr(engine, "monitor", None)
    if monitor is None:
        return []
    return monitor.history_rows()


def _slo_rows(engine) -> list[dict]:
    """One row per objective (empty until monitoring is enabled)."""
    monitor = getattr(engine, "monitor", None)
    if monitor is None:
        return []
    return monitor.slo_rows()


def _alert_rows(engine) -> list[dict]:
    """One row per (objective, severity) burn-rate alert."""
    monitor = getattr(engine, "monitor", None)
    if monitor is None:
        return []
    return monitor.alert_rows()


def _stream_rows(engine) -> list[dict]:
    return [loader.stats_row() for loader in engine.stream_loaders()]


def _empty_rows() -> list[dict]:
    return []


#: (name, columns, types, description) for every built-in system table.
SYSTEM_TABLE_SPECS = [
    ("sys.metrics",
     ("name", "kind", "value", "count", "sum", "mean", "p50", "p95",
      "p99"),
     (_STRING, _STRING, _DOUBLE, _LONG, _DOUBLE, _DOUBLE, _DOUBLE,
      _DOUBLE, _DOUBLE),
     "Every registered metric (counters, gauges, histogram quantiles)."),
    ("sys.regions",
     ("table", "region_id", "server", "start_key", "end_key",
      "memstore_bytes", "sstable_bytes", "sstables", "reads", "writes",
      "read_rate", "write_rate"),
     (_STRING, _LONG, _LONG, _STRING, _STRING, _LONG, _LONG, _LONG,
      _LONG, _LONG, _DOUBLE, _DOUBLE),
     "Per-region key range, placement, size, and decayed hotness."),
    ("sys.tables",
     ("name", "kind", "plugin_type", "indexes", "row_count", "regions",
      "storage_bytes", "analyzed_rows"),
     (_STRING, _STRING, _STRING, _STRING, _LONG, _LONG, _LONG, _LONG),
     "Catalog tables with live size and ANALYZE snapshots."),
    ("sys.servers",
     ("server", "state", "regions", "memstore_bytes", "sstable_bytes",
      "reads", "writes", "read_rate", "write_rate",
      "cache_used_bytes", "wal_live_records"),
     (_LONG, _STRING, _LONG, _LONG, _LONG, _LONG, _LONG, _DOUBLE,
      _DOUBLE, _LONG, _LONG),
     "Per-server state and aggregated load (what the balancer sees)."),
    ("sys.balancer",
     ("run", "sim_ms", "action", "table", "region_id", "src_server",
      "dest_server", "reason"),
     (_LONG, _DOUBLE, _STRING, _STRING, _LONG, _LONG, _LONG, _STRING),
     "Balancer decision history: every move/split/merge with reason."),
    ("sys.replication",
     ("table", "region_id", "server", "role", "state",
      "applied_seqno", "lag_records", "reads", "shipped_records"),
     (_STRING, _LONG, _LONG, _STRING, _STRING, _LONG, _LONG, _LONG,
      _LONG),
     "Per-replica placement, state, applied seqno, and shipping lag."),
    ("sys.events",
     ("seq", "sim_ms", "kind", "table", "region_id", "server",
      "detail"),
     (_LONG, _DOUBLE, _STRING, _STRING, _LONG, _LONG, _STRING),
     "The bounded cluster event log (flush/compaction/split/...)."),
    ("sys.streams",
     ("loader", "topic", "table", "offset", "end_offset", "lag",
      "watermark", "open_windows", "finalized_windows", "late_events",
      "alerts", "views", "loaded", "dropped", "polls", "sim_ms"),
     (_STRING, _STRING, _STRING, _LONG, _LONG, _LONG, _DOUBLE, _LONG,
      _LONG, _LONG, _LONG, _STRING, _LONG, _LONG, _LONG, _DOUBLE),
     "Per-stream-loader offsets, watermark, window and alert stats."),
    ("sys.metrics_history",
     ("name", "kind", "tier", "ts_ms", "value", "rate_per_s"),
     (_STRING, _STRING, _LONG, _DOUBLE, _DOUBLE, _DOUBLE),
     "Retained metric scrapes per downsampling tier, with reset-aware "
     "adjacent rates for counters."),
    ("sys.slos",
     ("slo", "kind", "target", "signal", "state", "budget_remaining",
      "burn_short", "burn_long", "description"),
     (_STRING, _STRING, _DOUBLE, _STRING, _STRING, _DOUBLE, _DOUBLE,
      _DOUBLE, _STRING),
     "Service-level objectives with live error-budget burn state."),
    ("sys.alerts",
     ("slo", "severity", "state", "burn_short", "burn_long", "factor",
      "short_ms", "long_ms", "pending_since_ms", "fired_at_ms",
      "times_fired", "trace_id", "updated_ms"),
     (_STRING, _STRING, _STRING, _DOUBLE, _DOUBLE, _DOUBLE, _DOUBLE,
      _DOUBLE, _DOUBLE, _DOUBLE, _LONG, _STRING, _DOUBLE),
     "Multi-window burn-rate alert state per (SLO, severity)."),
    ("sys.slow_queries",
     ("seq", "user", "trace_id", "sim_ms", "statement"),
     (_LONG, _STRING, _STRING, _DOUBLE, _STRING),
     "Statements over the slow-query threshold."),
    ("sys.sessions",
     ("session_id", "user", "created_at", "idle_s"),
     (_STRING, _STRING, _DOUBLE, _DOUBLE),
     "Active service-layer user sessions."),
]


def install_system_tables(engine) -> None:
    """Register the built-in ``sys.*`` tables on a fresh engine.

    ``sys.sessions`` and ``sys.slow_queries`` are installed with empty
    providers here (they are service-layer concepts); a
    ``JustServer`` re-registers them with live providers.
    """
    providers = {
        "sys.metrics": lambda: _metrics_rows(engine),
        "sys.regions": lambda: _region_rows(engine),
        "sys.tables": lambda: _table_rows(engine),
        "sys.servers": lambda: _server_rows(engine),
        "sys.balancer": lambda: _balancer_rows(engine),
        "sys.replication": lambda: _replication_rows(engine),
        "sys.events": lambda: _event_rows(engine),
        "sys.streams": lambda: _stream_rows(engine),
        "sys.metrics_history": lambda: _metrics_history_rows(engine),
        "sys.slos": lambda: _slo_rows(engine),
        "sys.alerts": lambda: _alert_rows(engine),
        "sys.slow_queries": _empty_rows,
        "sys.sessions": _empty_rows,
    }
    for name, columns, types, description in SYSTEM_TABLE_SPECS:
        engine.register_system_table(name, columns, providers[name],
                                     description=description,
                                     types=types)
