"""The engine core: schemas, table models, the query planner, and k-NN.

``JustEngine`` is the library's main entry point.  It wires the key-value
store, the cluster cost model, the catalog, and the index strategies into
the table abstractions of Section IV-D (common / plugin / view / meta
tables) and exposes the paper's query operations (Section V-C).
"""

from repro.core.schema import Field, FieldType, Schema
from repro.core.engine import JustEngine, QueryResult
from repro.core.tables import CommonTable, ViewTable
from repro.core.plugins import TrajectoryPlugin
from repro.core.catalog import Catalog, TableMeta

__all__ = [
    "Field",
    "FieldType",
    "Schema",
    "JustEngine",
    "QueryResult",
    "CommonTable",
    "ViewTable",
    "TrajectoryPlugin",
    "Catalog",
    "TableMeta",
]
