"""repro — a from-scratch reproduction of JUST (ICDE 2020).

JUST is JD's urban spatio-temporal data engine: an HBase-backed store with
GeoMesa-style space-filling-curve indexes, the paper's novel Z2T/XZ2T
per-period indexes, a field-compression mechanism, a SQL dialect (JustQL),
preset spatio-temporal analysis operations, and a multi-user service
layer.  This package implements the engine and every substrate it relies
on (the key-value store, the DataFrame engine, a deterministic cluster
cost model) plus the six comparison systems of the paper's evaluation.

Quick start::

    from repro import JustEngine, Envelope

    engine = JustEngine()
    engine.sql("CREATE TABLE poi (fid integer:primary key, name string, "
               "time date, geom point:srid=4326)")
    engine.insert("poi", rows)
    result = engine.spatial_range_query("poi", Envelope(116.0, 39.8,
                                                        116.4, 40.0))
"""

from repro.core.engine import JustEngine, QueryResult
from repro.core.schema import Field, FieldType, Schema
from repro.curves.strategies import STQuery
from repro.curves.timeperiod import TimePeriod
from repro.dataframe import DataFrame
from repro.geometry import Envelope, LineString, Point, Polygon
from repro.trajectory import GPSPoint, STSeries, Trajectory, TSeries

__version__ = "1.1.0"

__all__ = [
    "JustEngine",
    "QueryResult",
    "Field",
    "FieldType",
    "Schema",
    "STQuery",
    "TimePeriod",
    "DataFrame",
    "Envelope",
    "Point",
    "LineString",
    "Polygon",
    "GPSPoint",
    "STSeries",
    "Trajectory",
    "TSeries",
    "__version__",
]
