"""``python -m repro`` — the JustQL shell."""

import sys

from repro.cli import main

sys.exit(main())
