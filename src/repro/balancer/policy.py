"""Balancer policy: thresholds and per-server load aggregation.

The HBase master's balancer decides from per-server load summaries;
this module builds those summaries from the live store — region counts,
stored bytes, and the decayed read/write rates each
:class:`~repro.kvstore.region.Region` already maintains — and holds the
knobs the planner steers by.  Everything is measured on the simulated
clock, so hotness decays exactly as query traffic advances time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BalancerPolicy:
    """The knobs of one balancer instance (HBase ``hbase.master.*``)."""

    #: Minimum simulated ms between balancer runs.
    interval_ms: float = 5_000.0

    #: Blend of write and read rates that defines a region's (and a
    #: server's) load; writes weigh more because they cost WAL + flush.
    write_weight: float = 1.0
    read_weight: float = 0.5

    #: A server whose load exceeds ``imbalance_ratio`` x the mean is a
    #: move donor (HBase's ``slop``, expressed as a ratio).
    imbalance_ratio: float = 1.25
    #: Moves per run, bounded so one run never reshuffles the cluster.
    max_moves_per_run: int = 4
    #: Ignore regions colder than this when picking moves (moving a
    #: dead-cold region cannot fix a load imbalance).
    min_move_rate: float = 0.01

    #: Write rate (events/s) above which a region is split so its halves
    #: can be spread (the load-triggered split, not the size one).
    split_write_rate: float = 40.0
    #: Never split regions below this size; their halves would be noise.
    split_min_bytes: int = 8 * 1024
    max_splits_per_run: int = 2
    #: Stop load-splitting a table once it has this many regions — a
    #: persistent hotspot must not fragment a table without bound.
    split_max_regions: int = 32

    #: Two adjacent regions merge when both are colder than this ...
    merge_max_rate: float = 0.005
    #: ... and their combined size stays below this ...
    merge_max_bytes: int = 64 * 1024
    #: ... and both are at least this old.  A just-created (pre-split)
    #: or just-split region is cold only because it has not lived yet.
    merge_min_age_ms: float = 60_000.0
    max_merges_per_run: int = 2
    #: Keep at least this many regions per kv-table.
    min_regions_per_table: int = 1

    def region_load(self, read_rate: float, write_rate: float) -> float:
        return (self.write_weight * write_rate
                + self.read_weight * read_rate)


@dataclass
class ServerLoad:
    """One region server's aggregated load, as the balancer sees it."""

    server: int
    regions: int = 0
    bytes: int = 0
    reads: int = 0
    writes: int = 0
    read_rate: float = 0.0
    write_rate: float = 0.0

    def load(self, policy: BalancerPolicy) -> float:
        return policy.region_load(self.read_rate, self.write_rate)


def server_loads(store, now_ms: float | None = None,
                 ) -> dict[int, ServerLoad]:
    """Aggregate per-region hotness into per-server load summaries.

    Every placeable server gets an entry (an empty server is exactly
    the receiver a move wants); regions on dead/recovering servers are
    excluded — failover, not the balancer, is responsible for them.
    """
    if now_ms is None:
        now_ms = store.events.now_ms
    loads = {s: ServerLoad(s) for s in store.placeable_servers}
    for table in store.tables():
        for region in table.regions():
            load = loads.get(region.server)
            if load is None:
                continue
            load.regions += 1
            load.bytes += region.total_bytes
            load.reads += region.reads
            load.writes += region.writes
            load.read_rate += region.read_rate.rate_per_s(now_ms)
            load.write_rate += region.write_rate.rate_per_s(now_ms)
    return loads


def imbalance(loads: dict[int, ServerLoad],
              policy: BalancerPolicy) -> float:
    """Max/mean server load ratio; 1.0 is perfectly balanced.

    Returns 1.0 for an idle (or empty) cluster: with no load there is
    nothing to balance.
    """
    if not loads:
        return 1.0
    values = [load.load(policy) for load in loads.values()]
    mean = sum(values) / len(values)
    if mean <= 0.0:
        return 1.0
    return max(values) / mean
