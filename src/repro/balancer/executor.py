"""The balancer loop: periodically plan and execute placement actions.

One :class:`Balancer` per store plays the HBase master's balancer
chore: on each tick (gated by the simulated clock) it aggregates
per-server load, splits write-hot regions, moves hot regions off
overloaded servers, merges cold adjacent ones, and records everything —
a :class:`~repro.observability.events.BalancerRunEvent` per run in
``sys.events`` and one row per decision in its bounded history, which
backs the ``sys.balancer`` virtual table.
"""

from __future__ import annotations

from collections import deque

from repro.balancer.planner import plan_merges, plan_moves, plan_splits
from repro.balancer.policy import (
    BalancerPolicy,
    imbalance,
    server_loads,
)
from repro.observability.events import BalancerRunEvent

#: Decision rows kept for ``sys.balancer``.
HISTORY_CAPACITY = 256


class Balancer:
    """Plans and executes region placement on one :class:`KVStore`."""

    def __init__(self, store, policy: BalancerPolicy | None = None,
                 history_capacity: int = HISTORY_CAPACITY):
        self.store = store
        self.policy = policy if policy is not None else BalancerPolicy()
        self.runs = 0
        self.moves = 0
        self.splits = 0
        self.merges = 0
        #: ``sys.balancer`` rows: one per decision, newest last.
        self.history: deque[dict] = deque(maxlen=history_capacity)
        self._last_run_ms = float("-inf")

    # -- ticking -------------------------------------------------------------
    def maybe_tick(self) -> BalancerRunEvent | None:
        """Run one balance pass if the policy interval has elapsed."""
        now_ms = self.store.events.now_ms
        if now_ms - self._last_run_ms < self.policy.interval_ms:
            return None
        return self.tick()

    def tick(self) -> BalancerRunEvent:
        """Run one balance pass now: splits, then moves, then merges.

        Splits run first so a freshly split hot region's halves are
        visible to the move planner in the same pass.
        """
        store, policy = self.store, self.policy
        now_ms = store.events.now_ms
        self._last_run_ms = now_ms
        self.runs += 1
        run = self.runs
        loads_before = server_loads(store, now_ms)
        imbalance_before = imbalance(loads_before, policy)

        splits = 0
        for action in plan_splits(store, policy, now_ms):
            if store.table(action.table).split_region(action.region):
                splits += 1
                self._record(run, now_ms, "split", action.table,
                             action.region.region_id,
                             action.region.server, None, action.reason)

        loads = server_loads(store, now_ms)  # splits changed placement
        moves = self.apply_moves(
            run, now_ms, plan_moves(store, policy, loads, now_ms))

        merges = 0
        for action in plan_merges(store, policy, now_ms):
            merged = store.table(action.table).merge_regions(
                action.left, action.right)
            merges += 1
            self._record(run, now_ms, "merge", action.table,
                         merged.region_id, action.right.server,
                         merged.server, action.reason)

        self.moves += moves
        self.splits += splits
        self.merges += merges
        imbalance_after = imbalance(server_loads(store, now_ms), policy)
        registry = getattr(store.stats, "metrics", None)
        if registry is not None:
            registry.counter("balancer.runs").inc()
            registry.counter("balancer.moves").inc(moves)
            registry.counter("balancer.splits").inc(splits)
            registry.counter("balancer.merges").inc(merges)
            registry.gauge("balancer.imbalance").set(
                round(imbalance_after, 6))
        event = BalancerRunEvent(
            run=run, moves=moves, splits=splits, merges=merges,
            imbalance_before=round(imbalance_before, 3),
            imbalance_after=round(imbalance_after, 3))
        store.events.emit(event)
        return event

    def apply_moves(self, run: int, now_ms: float,
                    planned: list) -> int:
        """Execute planned moves, re-validating each destination.

        A destination picked from the load snapshot can stop being
        placeable before execution (its server crashed into
        ``recovering_servers`` mid-tick, e.g. via a fault plan firing
        between planning and acting); executing anyway would raise out
        of ``move_region`` and abort the whole pass.  Such moves are
        skipped with a recorded ``skip_move`` decision instead.
        """
        store = self.store
        moves = 0
        for action in planned:
            dest = action.dest
            if dest in store.dead_servers \
                    or dest in store.recovering_servers:
                self._record(run, now_ms, "skip_move", action.table,
                             action.region.region_id, action.source,
                             dest,
                             f"destination server {dest} stopped being "
                             f"placeable after planning")
                continue
            store.move_region(action.region, dest)
            moves += 1
            self._record(run, now_ms, "move", action.table,
                         action.region.region_id, action.source,
                         dest, action.reason)
        return moves

    def _record(self, run: int, sim_ms: float, action: str, table: str,
                region_id: int, src_server: int | None,
                dest_server: int | None, reason: str) -> None:
        self.history.append({
            "run": run, "sim_ms": round(sim_ms, 3), "action": action,
            "table": table, "region_id": region_id,
            "src_server": src_server, "dest_server": dest_server,
            "reason": reason})

    # -- introspection -------------------------------------------------------
    def history_rows(self) -> list[dict]:
        """``sys.balancer`` rows, oldest first."""
        return list(self.history)

    def snapshot(self) -> dict:
        now_ms = self.store.events.now_ms
        loads = server_loads(self.store, now_ms)
        return {
            "runs": self.runs, "moves": self.moves,
            "splits": self.splits, "merges": self.merges,
            "imbalance": round(imbalance(loads, self.policy), 3),
            "interval_ms": self.policy.interval_ms,
        }
