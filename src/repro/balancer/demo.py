"""``python -m repro balance`` — the load-balancer demonstration.

Two acts:

1. **Skewed multi-tenant workload, balancer off vs on.**  Fifteen
   tenant tables, zipfian tenant popularity: round-robin placement
   balances region counts perfectly and write load terribly.  The
   balancer-on run splits the write-hot tenants, moves hot regions off
   the overloaded servers, and the max/mean write-load imbalance and
   the hot tenant's cold-scan p95 both drop.

2. **SQL surface.**  An engine with the balancer enabled, a table
   pre-split and salted via ``CREATE TABLE ... WITH (presplit=...,
   salt_buckets=...)``, and the introspection tables an operator
   would read: ``sys.servers``, ``sys.balancer``, ``sys.events``.

Everything is seeded; two runs print identical tables.
"""

from __future__ import annotations

import argparse
import sys

from repro.balancer.workload import WorkloadConfig, run_workload
from repro.cli import format_result
from repro.service.client import JustClient
from repro.service.server import JustServer

DEMO_USER = "ops"


def _print_comparison(off, on, out) -> None:
    rows = [
        ("total writes", off.total_writes, on.total_writes),
        ("write imbalance (max/mean)",
         f"{off.write_imbalance:.2f}", f"{on.write_imbalance:.2f}"),
        ("per-server write rates (/s)",
         str(list(off.server_write_rates.values())),
         str(list(on.server_write_rates.values()))),
        ("hot-tenant regions", off.hot_tenant_regions,
         on.hot_tenant_regions),
        ("hot-tenant servers", off.hot_tenant_servers,
         on.hot_tenant_servers),
        ("hot-tenant cold-scan p95 (sim-ms)",
         f"{off.scan_p95_ms:.2f}", f"{on.scan_p95_ms:.2f}"),
        ("moves / splits / merges", "-",
         f"{on.moves} / {on.splits} / {on.merges}"),
        ("writes retried (mid-move)", off.retried_writes,
         on.retried_writes),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"{'metric'.ljust(width)} | balancer off | balancer on",
          file=out)
    print(f"{'-' * width}-+--------------+------------", file=out)
    for name, off_v, on_v in rows:
        print(f"{name.ljust(width)} | {str(off_v):>12} | {on_v}",
              file=out)


def _sql_act(out) -> None:
    server = JustServer()
    server.engine.enable_balancer()
    client = JustClient(server, DEMO_USER)

    print("\n== CREATE TABLE ... WITH (presplit=6, salt_buckets=3) ==",
          file=out)
    client.execute_query(
        "CREATE TABLE taxi (fid integer:primary key, name string, "
        "time date, geom point) WITH (presplit=6, salt_buckets=3)")
    values = ", ".join(
        f"({i}, 'cab{i}', {1_500_000_000 + i * 60}, "
        f"st_makePoint({116.0 + (i % 40) * 0.01:.2f}, "
        f"{39.8 + (i % 25) * 0.01:.2f}))"
        for i in range(200))
    client.execute_query(f"INSERT INTO taxi VALUES {values}")
    result = client.execute_query(
        "SELECT table, count(*) AS regions FROM sys.regions "
        "WHERE table LIKE 'ops__taxi%' GROUP BY table")
    print(format_result(result), file=out)

    print("\n== sys.servers (what the balancer sees) ==", file=out)
    result = client.execute_query("SELECT * FROM sys.servers")
    print(format_result(result), file=out)

    # A long idle period: every pre-split region of the demo table goes
    # cold, so the next balancer pass merges the small neighbours back
    # together (the elastic shrink half of the loop).
    server.engine.events.advance(300_000)
    for _ in range(3):
        server.engine.balancer.tick()

    print("\n== sys.balancer (decision history) ==", file=out)
    result = client.execute_query(
        "SELECT run, action, table, region_id, src_server, dest_server "
        "FROM sys.balancer LIMIT 15")
    print(format_result(result), file=out)

    print("\n== balancer events in sys.events ==", file=out)
    result = client.execute_query(
        "SELECT kind, count(*) AS n FROM sys.events "
        "WHERE kind = 'balancer_run' OR kind = 'region_move' "
        "OR kind = 'region_merge' OR kind = 'split' GROUP BY kind")
    print(format_result(result), file=out)
    client.close()


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro balance",
        description="Load-balancer demo: zipfian multi-tenant skew, "
                    "balancer off vs on.")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload (CI smoke)")
    parser.add_argument("--tenants", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--zipf", type=float, default=None,
                        help="zipf exponent for tenant popularity")
    args = parser.parse_args(argv)

    config = WorkloadConfig()
    if args.quick:
        config.rounds = 20
        config.writes_per_round = 1000
        config.scan_samples = 8
        config.balancer_interval_ms = 100.0
    if args.tenants is not None:
        config.tenants = args.tenants
    if args.rounds is not None:
        config.rounds = args.rounds
    if args.zipf is not None:
        config.zipf_s = args.zipf

    print(f"== act 1: {config.tenants} tenants, "
          f"zipf(s={config.zipf_s}) popularity, "
          f"{config.rounds} x {config.writes_per_round} writes on "
          f"{config.num_servers} servers ==", file=out)
    off = run_workload(config, balancer_on=False)
    on = run_workload(config, balancer_on=True)
    _print_comparison(off, on, out)
    ratio = off.write_imbalance / max(on.write_imbalance, 1e-9)
    print(f"\nimbalance reduced {ratio:.1f}x; hot-tenant scan p95 "
          f"{off.scan_p95_ms:.2f} -> {on.scan_p95_ms:.2f} sim-ms",
          file=out)

    print("\n== act 2: the SQL surface ==", file=out)
    _sql_act(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
