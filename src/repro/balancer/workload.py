"""Zipfian multi-tenant workload driving (and measuring) the balancer.

A fleet of tenant kv-tables receives write traffic whose tenant choice
is Zipf-skewed — a few hot tenants carry most of the load, the classic
urban access pattern — while the simulated clock advances by each
round's modeled cost.  Round-robin placement balances region *counts*
perfectly and write *load* terribly; this module measures that gap
(max/mean per-server write-load imbalance, hot-tenant cold-scan
latency) with the balancer off and on.  Shared by ``python -m repro
balance`` and ``benchmarks/bench_balancer.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.balancer.executor import Balancer
from repro.balancer.policy import (
    BalancerPolicy,
    imbalance,
    server_loads,
)
from repro.cluster.simclock import CostModel, SimJob
from repro.datagen.synthetic import zipfian_sampler
from repro.errors import RegionUnavailableError
from repro.kvstore.scan import ScanSpec
from repro.kvstore.store import KVStore
from repro.kvstore.wal import SyncPolicy


@dataclass
class WorkloadConfig:
    num_servers: int = 5
    tenants: int = 15
    zipf_s: float = 1.4
    rounds: int = 40
    writes_per_round: int = 1500
    value_bytes: int = 96
    #: Cold scans of the hottest tenant measured after the write phase.
    scan_samples: int = 15
    seed: int = 20140301
    #: Balancer cadence during the run (simulated ms).
    balancer_interval_ms: float = 250.0


@dataclass
class WorkloadResult:
    """What one run (balancer off or on) measured."""

    total_writes: int = 0
    retried_writes: int = 0
    #: max/mean per-server write-rate imbalance at the end of the run.
    write_imbalance: float = 0.0
    #: Final per-server decayed write rates (events/s), by server id.
    server_write_rates: dict[int, float] = field(default_factory=dict)
    #: Hot-tenant region count and servers at the end of the run.
    hot_tenant_regions: int = 0
    hot_tenant_servers: int = 0
    #: Simulated latencies of cold hot-tenant full scans.
    scan_sim_ms: list[float] = field(default_factory=list)
    moves: int = 0
    splits: int = 0
    merges: int = 0

    @property
    def scan_p95_ms(self) -> float:
        if not self.scan_sim_ms:
            return 0.0
        ordered = sorted(self.scan_sim_ms)
        return ordered[min(len(ordered) - 1,
                           int(0.95 * len(ordered)))]


def workload_policy(config: WorkloadConfig) -> BalancerPolicy:
    """The balancer tuning the workload runs with."""
    return BalancerPolicy(
        interval_ms=config.balancer_interval_ms,
        # Chase imbalance hard: a skewed multi-tenant fleet needs the
        # hot tenants split fine enough that moves can spread them.
        imbalance_ratio=1.15, max_moves_per_run=6,
        split_write_rate=40.0, max_splits_per_run=4,
        split_max_regions=12)


def build_store(config: WorkloadConfig) -> KVStore:
    """A clustered store with size-splits parked out of the way.

    ``split_bytes`` is set far above what the workload writes so every
    placement change during the run is a *balancer* decision — the
    experiment isolates load balancing from size management.
    """
    return KVStore(num_servers=config.num_servers,
                   split_bytes=256 * 1024 * 1024,
                   wal_policy=SyncPolicy.PERIODIC,
                   cost_model=CostModel())


def tenant_name(index: int) -> str:
    return f"tenant_{index:02d}"


def run_workload(config: WorkloadConfig | None = None,
                 balancer_on: bool = True) -> WorkloadResult:
    """Drive the skewed workload; return what it measured.

    The clock advances after every round by the round's modeled write
    cost (per-put CPU plus WAL volume), so decayed rates, balancer
    intervals, and move-unavailability windows all play out in
    simulated time.  A write landing on a mid-move region is retried
    after a simulated backoff, exactly like a client seeing
    ``RegionUnavailableError``.
    """
    config = config if config is not None else WorkloadConfig()
    store = build_store(config)
    policy = workload_policy(config)
    balancer = Balancer(store, policy) if balancer_on else None
    rng = random.Random(config.seed)
    draw_tenant = zipfian_sampler(config.tenants, config.zipf_s, rng)
    tables = [store.create_table(tenant_name(i))
              for i in range(config.tenants)]
    model = store.cost_model
    result = WorkloadResult()

    for _ in range(config.rounds):
        before = store.stats.snapshot()
        for _ in range(config.writes_per_round):
            table = tables[draw_tenant()]
            key = f"{rng.randrange(10 ** 8):08d}".encode()
            value = rng.randbytes(config.value_bytes)
            for attempt in range(8):
                try:
                    table.put(key, value)
                    break
                except RegionUnavailableError:
                    # Client backoff: burn simulated time, retry.
                    result.retried_writes += 1
                    store.events.advance(model.region_reopen_ms / 2)
            result.total_writes += 1
        delta = store.stats.snapshot().delta(before)
        job = SimJob(model, num_servers=config.num_servers)
        job.charge_cpu_records(config.writes_per_round,
                               model.kv_put_us, parallel=False)
        job.charge_wal(delta)
        store.events.advance(job.elapsed_ms)
        if balancer is not None:
            balancer.maybe_tick()

    now_ms = store.events.now_ms
    loads = server_loads(store, now_ms)
    result.write_imbalance = imbalance(
        loads, BalancerPolicy(write_weight=1.0, read_weight=0.0))
    result.server_write_rates = {
        s: round(load.write_rate, 1) for s, load in loads.items()}
    hot = tables[0]
    result.hot_tenant_regions = hot.num_regions
    result.hot_tenant_servers = len(hot.servers_used())
    result.scan_sim_ms = _measure_hot_scans(store, hot, config)
    if balancer is not None:
        result.moves = balancer.moves
        result.splits = balancer.splits
        result.merges = balancer.merges
    return result


def _measure_hot_scans(store, table, config: WorkloadConfig
                       ) -> list[float]:
    """Simulated latencies of cold full scans of the hot tenant.

    The table is flushed first and caches are cleared before each
    sample, so the scan pays disk reads — which is where cross-server
    parallelism (the straggler model in
    :meth:`SimJob.charge_store_scan`) shows up: the same bytes spread
    over more servers finish sooner.
    """
    model = store.cost_model
    table.flush()
    # Let in-flight moves finish before measuring: a scan mid-window
    # retries and its aborted attempt's reads would pollute the sample.
    settle = max((r.unavailable_until_ms for r in table.regions()),
                 default=0.0)
    if settle > store.events.now_ms:
        store.events.advance(settle - store.events.now_ms)
    samples: list[float] = []
    for _ in range(config.scan_samples):
        for attempt in range(8):
            store.clear_caches()
            before = store.stats.snapshot()
            try:
                for _ in table.scan(ScanSpec.full()):
                    pass
                break
            except RegionUnavailableError:
                store.events.advance(model.region_reopen_ms / 2)
        delta = store.stats.snapshot().delta(before)
        job = SimJob(model, num_servers=config.num_servers)
        job.charge_store_scan(delta, num_ranges=table.num_regions)
        samples.append(job.elapsed_ms)
        store.events.advance(job.elapsed_ms)
    return samples
