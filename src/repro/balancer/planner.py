"""Balancer planner: turn load summaries into move/split/merge plans.

Pure decision logic — no side effects on the store — so every plan is
unit-testable against synthetic loads.  The executor applies plans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.balancer.policy import BalancerPolicy, ServerLoad, imbalance


@dataclass
class MoveAction:
    """Move ``region`` from its hot server to ``dest``."""

    table: str
    region: object
    source: int
    dest: int
    reason: str


@dataclass
class SplitAction:
    """Split a write-hot ``region`` so its halves can spread."""

    table: str
    region: object
    reason: str


@dataclass
class MergeAction:
    """Merge two cold adjacent regions of ``table``."""

    table: str
    left: object
    right: object
    reason: str


def plan_splits(store, policy: BalancerPolicy,
                now_ms: float) -> list[SplitAction]:
    """Pick write-hot regions worth splitting, hottest first."""
    candidates = []
    for table in store.tables():
        if table.num_regions >= policy.split_max_regions:
            continue
        for region in table.regions():
            rate = region.write_rate.rate_per_s(now_ms)
            if rate >= policy.split_write_rate \
                    and region.total_bytes >= policy.split_min_bytes:
                candidates.append((rate, table.name, region))
    candidates.sort(key=lambda c: -c[0])
    return [SplitAction(table=name, region=region,
                        reason=f"write_rate={rate:.1f}/s >= "
                               f"{policy.split_write_rate:.1f}/s")
            for rate, name, region in
            candidates[:policy.max_splits_per_run]]


def plan_moves(store, policy: BalancerPolicy,
               loads: dict[int, ServerLoad],
               now_ms: float) -> list[MoveAction]:
    """Greedy donor->receiver moves while the cluster stays imbalanced.

    Each step takes the hottest movable region off the most loaded
    server and projects it onto the least loaded one; projected loads
    are updated so one run's moves do not all pile onto the same
    receiver.  Stops when the projected imbalance drops under the
    policy's trigger ratio, when a move would not help (donor no hotter
    than receiver), or at ``max_moves_per_run``.

    Replica anti-affinity: a region is never planned onto a server
    already hosting one of its replicas — co-locating two copies would
    void the redundancy the replication layer placed them for.
    """
    if len(loads) < 2:
        return []
    replica_servers = getattr(store, "replica_servers", None)
    projected = {s: load.load(policy) for s, load in loads.items()}
    region_rates: dict[int, list[tuple[float, str, object]]] = \
        {s: [] for s in loads}
    for table in store.tables():
        for region in table.regions():
            if region.server not in region_rates:
                continue
            rate = policy.region_load(
                region.read_rate.rate_per_s(now_ms),
                region.write_rate.rate_per_s(now_ms))
            region_rates[region.server].append((rate, table.name,
                                                region))
    moves: list[MoveAction] = []
    moved_ids: set[int] = set()
    while len(moves) < policy.max_moves_per_run:
        mean = sum(projected.values()) / len(projected)
        if mean <= 0.0:
            break
        donor = max(projected, key=projected.get)
        receiver = min(projected, key=projected.get)
        if projected[donor] < policy.imbalance_ratio * mean:
            break  # balanced enough
        gap = projected[donor] - projected[receiver]
        best = None
        for rate, name, region in region_rates[donor]:
            if region.region_id in moved_ids \
                    or rate < policy.min_move_rate:
                continue
            # Moving more than the gap would just swap the hotspot.
            if rate >= gap:
                continue
            # Anti-affinity: skip regions with a replica on the receiver.
            if replica_servers is not None \
                    and receiver in replica_servers(region):
                continue
            if best is None or rate > best[0]:
                best = (rate, name, region)
        if best is None:
            break
        rate, name, region = best
        moves.append(MoveAction(
            table=name, region=region, source=donor, dest=receiver,
            reason=f"server {donor} load {projected[donor]:.1f} > "
                   f"{policy.imbalance_ratio:.2f}x mean {mean:.1f}"))
        moved_ids.add(region.region_id)
        projected[donor] -= rate
        projected[receiver] += rate
        region_rates[receiver].append((rate, name, region))
    return moves


def plan_merges(store, policy: BalancerPolicy,
                now_ms: float) -> list[MergeAction]:
    """Pick cold adjacent region pairs to merge, at most one per table.

    One merge per table per run keeps the plan valid: merging a pair
    invalidates the adjacency of any overlapping pair picked from the
    same snapshot.
    """
    merges: list[MergeAction] = []
    for table in store.tables():
        regions = table.regions()
        if len(regions) <= policy.min_regions_per_table:
            continue
        for left, right in zip(regions, regions[1:]):
            age = min(now_ms - left.created_ms,
                      now_ms - right.created_ms)
            if age < policy.merge_min_age_ms:
                continue
            lrate = policy.region_load(
                left.read_rate.rate_per_s(now_ms),
                left.write_rate.rate_per_s(now_ms))
            rrate = policy.region_load(
                right.read_rate.rate_per_s(now_ms),
                right.write_rate.rate_per_s(now_ms))
            if max(lrate, rrate) > policy.merge_max_rate:
                continue
            combined = left.total_bytes + right.total_bytes
            if combined > policy.merge_max_bytes:
                continue
            merges.append(MergeAction(
                table=table.name, left=left, right=right,
                reason=f"both cold (<= {policy.merge_max_rate}/s), "
                       f"{combined}B combined"))
            break  # one merge per table per run
        if len(merges) >= policy.max_merges_per_run:
            break
    return merges


__all__ = ["MoveAction", "SplitAction", "MergeAction",
           "plan_splits", "plan_moves", "plan_merges", "imbalance"]
