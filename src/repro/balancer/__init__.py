"""Hot-region load balancer & elastic data placement.

The HBase master's balancer chore in miniature, closing the
measure→decide→act loop over the simulated cluster:

* :mod:`repro.balancer.policy` — knobs + per-server load aggregation
  from the regions' decayed read/write rates.
* :mod:`repro.balancer.planner` — pure planning: region moves off hot
  servers, load-triggered splits, cold-neighbour merges.
* :mod:`repro.balancer.executor` — the :class:`Balancer` loop that
  ticks on the simulated clock, applies plans, and records history
  for ``sys.balancer`` / ``sys.events``.
* :mod:`repro.balancer.workload` — the zipfian multi-tenant workload
  used by ``python -m repro balance`` and the benchmarks.
"""

from repro.balancer.executor import Balancer
from repro.balancer.planner import (
    MergeAction,
    MoveAction,
    SplitAction,
    plan_merges,
    plan_moves,
    plan_splits,
)
from repro.balancer.policy import (
    BalancerPolicy,
    ServerLoad,
    imbalance,
    server_loads,
)

__all__ = [
    "Balancer", "BalancerPolicy", "ServerLoad",
    "MoveAction", "SplitAction", "MergeAction",
    "plan_moves", "plan_splits", "plan_merges",
    "server_loads", "imbalance",
]
