"""A minimal metrics registry (counters, gauges, quantile histograms).

Mirrors the Prometheus client-library surface the HBase/OpenTelemetry
stacks expose: metrics are named, optionally labelled, created on first
use, and snapshot as plain JSON-safe numbers so the HTTP ``/metrics``
endpoint can serve them without any serialization glue.  Histograms keep
a bounded sample buffer and report nearest-rank p50/p95/p99, which is
what the benchmark harness needs for tail-latency attribution.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default latency bucket bounds (simulated milliseconds).  Cumulative
#: ``le`` bucket counters make *windowed* latency SLIs exact: the SLO
#: layer computes the fraction of observations above a threshold from
#: two counter increases instead of from unwindowed quantiles.
DEFAULT_LATENCY_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
    2500.0, 5000.0)


def _escape_label_value(value) -> str:
    """Prometheus label-value escaping (backslash first, then quote/LF)."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _metric_key(name: str, labels: dict) -> str:
    """Flatten ``name`` + labels into one stable registry key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={_escape_label_value(labels[k])}"
                     for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _format_bound(bound: float) -> str:
    """Compact, stable rendering of a bucket upper bound (``le``)."""
    return f"{bound:g}"


def _type_name(metric) -> str:
    if isinstance(metric, Counter):
        return "counter"
    if isinstance(metric, Gauge):
        return "gauge"
    return "histogram"


class Counter:
    """A monotonically increasing count (events, bytes, errors)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (in-flight statements, cache fill)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """A sample distribution with nearest-rank quantiles.

    ``count``/``sum`` are exact over every observation; quantiles are
    computed over a bounded sample buffer.  When the buffer fills it is
    halved by keeping every second sample (a deterministic decimation
    rather than a random reservoir, so tests are reproducible), and the
    sampling *stride* doubles: after ``k`` decimations only every
    ``2^k``-th new observation is retained, so retained samples keep
    uniform weight and the buffer stops churning through repeated
    halvings.  The very latest observation is always kept (provisionally,
    replaced by its successor when off-stride) so max-style quantiles
    track the newest data.  With the default 8192-sample buffer the
    reproduction's workloads never decimate.
    """

    __slots__ = ("name", "count", "sum", "_samples", "_max_samples",
                 "_stride", "_phase", "_tail_provisional", "_sorted",
                 "buckets", "_bucket_counts", "_bucket_exemplars",
                 "last_exemplar")

    def __init__(self, name: str, max_samples: int = 8192,
                 buckets: tuple[float, ...] | None = None):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self._samples: list[float] = []
        self._max_samples = max_samples
        self._stride = 1
        self._phase = 0
        self._tail_provisional = False
        #: Sorted view of ``_samples``, invalidated on observe so one
        #: snapshot (p50+p95+p99) pays a single O(n log n) sort.
        self._sorted: list[float] | None = None
        self.buckets: tuple[float, ...] = (
            tuple(sorted(buckets)) if buckets else ())
        # Cumulative ``le`` counts, one per bound (no +Inf slot; that is
        # ``count``).  Exemplars keep one (stamp, exemplar) per bucket
        # plus an overflow slot, so alerts can link the most recent
        # observation above a threshold back to its trace.
        self._bucket_counts: list[int] = [0] * len(self.buckets)
        self._bucket_exemplars: list[tuple[int, object] | None] = (
            [None] * (len(self.buckets) + 1))
        self.last_exemplar: object | None = None

    def observe(self, value: float, exemplar: object = None) -> None:
        self.count += 1
        self.sum += value
        self._sorted = None
        if self.buckets:
            slot = bisect_left(self.buckets, value)
            for i in range(slot, len(self.buckets)):
                self._bucket_counts[i] += 1
        else:
            slot = 0
        if exemplar is not None:
            self.last_exemplar = exemplar
            if self.buckets:
                self._bucket_exemplars[slot] = (self.count, exemplar)
        if self._tail_provisional:
            # The previous observation was off-stride and kept only so
            # the buffer tail tracks the latest value; its successor
            # replaces it.
            self._samples.pop()
            self._tail_provisional = False
        self._phase += 1
        if self._phase >= self._stride:
            self._phase = 0
            if len(self._samples) >= self._max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2
            self._samples.append(value)
        else:
            self._samples.append(value)
            self._tail_provisional = True

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs (Prometheus ``le``)."""
        return list(zip(self.buckets, self._bucket_counts))

    def exemplar_above(self, threshold: float):
        """Most recent exemplar observed above ``threshold``, or None.

        Scans the overflow slot plus every bucket whose upper bound
        exceeds the threshold (bucket membership is approximate at the
        boundary bucket; exemplars are diagnostics, not accounting).
        """
        best: tuple[int, object] | None = None
        for i, entry in enumerate(self._bucket_exemplars):
            if entry is None:
                continue
            bound_above = (i >= len(self.buckets)
                           or self.buckets[i] > threshold)
            if bound_above and (best is None or entry[0] > best[0]):
                best = entry
        return best[1] if best is not None else None

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        ordered = self._sorted
        rank = max(0, min(len(ordered) - 1,
                          int(q * len(ordered) + 0.5) - 1))
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def as_dict(self) -> dict:
        out = {"count": self.count, "sum": round(self.sum, 6),
               "mean": round(self.mean, 6),
               "p50": round(self.p50, 6), "p95": round(self.p95, 6),
               "p99": round(self.p99, 6)}
        if self.buckets:
            out["buckets"] = {_format_bound(bound): count
                              for bound, count in self.bucket_counts()}
        return out


class MetricsRegistry:
    """Named metrics, created on first use and shared by name.

    One registry serves a whole deployment (engine + store + service):
    components hold the registry and call :meth:`counter` /
    :meth:`gauge` / :meth:`histogram`, which return the same object for
    the same name + labels, exactly like a Prometheus client registry.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._help: dict[str, str] = {}

    def _get(self, name: str, labels: dict, cls, **kwargs):
        key = _metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(key, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {key!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(self, name: str,
                  buckets: tuple[float, ...] | None = None,
                  **labels) -> Histogram:
        """Get-or-create; ``buckets`` applies only on first creation."""
        return self._get(name, labels, Histogram, buckets=buckets)

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to a metric *base* name (no labels)."""
        self._help[name] = help_text

    def help_text(self, name: str) -> str | None:
        return self._help.get(name)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def items(self) -> list[tuple[str, Counter | Gauge | Histogram]]:
        """(flattened key, metric) pairs, sorted by key."""
        return [(key, self._metrics[key])
                for key in sorted(self._metrics)]

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """Every metric as JSON-safe data, keyed by flattened name."""
        out = {}
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if isinstance(metric, Histogram):
                out[key] = metric.as_dict()
            else:
                out[key] = metric.value
        return out

    def render_text(self) -> str:
        """Prometheus-exposition-style text (one ``name value`` per line).

        Histogram stat suffixes attach to the metric *name*, before any
        label braces (``name_p95{op=scan}``), the only form Prometheus
        scrapers parse.  Each metric base name gets a ``# TYPE`` line
        (and a ``# HELP`` line when :meth:`describe` registered one)
        before its first sample, and bucketed histograms additionally
        expose cumulative ``name_bucket{le=...}`` series.
        """
        lines: list[str] = []
        described: set[str] = set()
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            base, brace, labels = key.partition("{")
            labelpart = brace + labels
            if base not in described:
                described.add(base)
                help_text = self._help.get(base)
                if help_text is not None:
                    escaped = (help_text.replace("\\", "\\\\")
                               .replace("\n", "\\n"))
                    lines.append(f"# HELP {base} {escaped}")
                lines.append(f"# TYPE {base} {_type_name(metric)}")
            if isinstance(metric, Histogram):
                stats = metric.as_dict()
                stats.pop("buckets", None)
                for stat, number in stats.items():
                    lines.append(f"{base}_{stat}{labelpart} {number}")
                if metric.buckets:
                    inner = labels[:-1] + "," if labelpart else ""
                    for bound, count in metric.bucket_counts():
                        lines.append(f"{base}_bucket{{"
                                     f"{inner}le={_format_bound(bound)}}}"
                                     f" {count}")
                    lines.append(f"{base}_bucket{{{inner}le=+Inf}} "
                                 f"{metric.count}")
            else:
                lines.append(f"{key} {metric.value}")
        return "\n".join(lines)
