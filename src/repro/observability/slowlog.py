"""A bounded slow-query log on the simulated clock.

The service layer records every statement whose simulated latency
crossed a configurable threshold — the MySQL slow-query-log /
HBase ``responseTooSlow`` role.  Entries keep the statement, the user,
the latency breakdown, and (when profiling is on) the statement's trace,
so a slow query can be attributed to a layer without re-running it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

#: Default threshold: the paper's interactive queries sit well under a
#: second of simulated time; anything slower deserves a log line.
DEFAULT_SLOW_MS = 1000.0
DEFAULT_CAPACITY = 128


@dataclass
class SlowQueryEntry:
    """One over-threshold statement."""

    statement: str
    user: str
    sim_ms: float
    breakdown: dict[str, float] = field(default_factory=dict)
    profile: dict | None = None
    seq: int = 0
    trace_id: str = ""

    def as_dict(self) -> dict:
        out = {"seq": self.seq, "user": self.user,
               "statement": self.statement,
               "trace_id": self.trace_id,
               "sim_ms": round(self.sim_ms, 3),
               "breakdown": {k: round(v, 3)
                             for k, v in self.breakdown.items()}}
        if self.profile is not None:
            out["profile"] = self.profile
        return out


class SlowQueryLog:
    """Ring buffer of slow statements; disabled with ``threshold_ms=None``."""

    def __init__(self, threshold_ms: float | None = DEFAULT_SLOW_MS,
                 capacity: int = DEFAULT_CAPACITY):
        self.threshold_ms = threshold_ms
        self._entries: deque[SlowQueryEntry] = deque(maxlen=capacity)
        self._seq = 0
        #: Total over-threshold statements seen (survives ring eviction).
        self.total_logged = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    def observe(self, statement: str, user: str, sim_ms: float,
                breakdown: dict[str, float] | None = None,
                profile: dict | None = None,
                trace_id: str = "") -> SlowQueryEntry | None:
        """Log the statement when it crossed the threshold."""
        if self.threshold_ms is None or sim_ms < self.threshold_ms:
            return None
        self._seq += 1
        self.total_logged += 1
        entry = SlowQueryEntry(statement, user, sim_ms,
                               dict(breakdown or {}), profile,
                               seq=self._seq, trace_id=trace_id)
        self._entries.append(entry)
        return entry

    def entries(self) -> list[SlowQueryEntry]:
        return list(self._entries)

    def as_dicts(self) -> list[dict]:
        return [e.as_dict() for e in self._entries]

    def __len__(self) -> int:
        return len(self._entries)
