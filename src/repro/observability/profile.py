"""Per-statement trace profiles (service → SQL operator → region scan).

A :class:`QueryProfile` is attached to the statement's
:class:`~repro.resilience.RequestContext`; instrumentation points open
nested :class:`Span` objects around physical operators while leaf events
(per-region scans) attach to whatever span is current.  The result is an
OpenTelemetry-shaped trace on the simulated clock: every span carries
rows, blocks read, cache hits, and simulated milliseconds, and
``EXPLAIN ANALYZE`` renders the operator spans as an annotated plan
tree.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager

#: Deterministic OTel-shaped id generators: 128-bit trace ids and
#: 64-bit span ids rendered as fixed-width hex.  A process-local
#: counter (not a PRNG) keeps replays and tests reproducible.
_TRACE_IDS = itertools.count(1)
_SPAN_IDS = itertools.count(1)


def next_trace_id() -> str:
    return f"{next(_TRACE_IDS):032x}"


def next_span_id() -> str:
    return f"{next(_SPAN_IDS):016x}"


class Span:
    """One node of a statement's trace tree.

    ``sim_ms`` and the I/O attributes are *inclusive* of children (a
    scan operator's span covers its region-scan events), matching how
    EXPLAIN ANALYZE tools report operator timings.
    """

    __slots__ = ("name", "kind", "attrs", "sim_ms", "children",
                 "span_id", "parent_id")

    def __init__(self, name: str, kind: str = "span", **attrs):
        self.name = name
        self.kind = kind
        self.attrs = attrs
        self.sim_ms = 0.0
        self.children: list[Span] = []
        self.span_id = next_span_id()
        self.parent_id = ""

    @property
    def rows(self) -> int:
        return self.attrs.get("rows_out", self.attrs.get("rows", 0))

    @property
    def blocks_read(self) -> int:
        return self.attrs.get("blocks_read", 0)

    @property
    def cache_hits(self) -> int:
        return self.attrs.get("cache_hits", 0)

    @property
    def cache_hit_rate(self) -> float | None:
        """Block-cache hit ratio over the blocks this span touched."""
        touched = self.blocks_read + self.cache_hits
        if touched == 0:
            return None
        return self.cache_hits / touched

    def as_dict(self) -> dict:
        out = {"name": self.name, "kind": self.kind,
               "span_id": self.span_id, "parent_id": self.parent_id,
               "sim_ms": round(self.sim_ms, 3)}
        out.update(self.attrs)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out

    def walk(self, depth: int = 0):
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.sim_ms:.1f} ms, " \
               f"{len(self.children)} children)"


class QueryProfile:
    """The trace of one statement, rooted at the service-layer span."""

    def __init__(self, statement: str = "", user: str = ""):
        self.statement = statement
        self.user = user
        self.trace_id = next_trace_id()
        self.root = Span("statement", kind="service",
                         statement=statement, user=user)
        self._stack: list[Span] = [self.root]

    @property
    def current(self) -> Span:
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, kind: str = "span", **attrs):
        """Open a nested span; instrumentation fills attrs before exit."""
        span = Span(name, kind, **attrs)
        span.parent_id = self.current.span_id
        self.current.children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    def add_event(self, name: str, kind: str = "event", **attrs) -> Span:
        """Attach a leaf span to the current span without nesting into it.

        Used from generators (the store's region iteration), where a
        ``with``-scoped span would be suspended across ``yield`` and
        could interleave badly with the consumer's own spans.
        """
        span = Span(name, kind, **attrs)
        span.parent_id = self.current.span_id
        self.current.children.append(span)
        return span

    def finish(self, sim_ms: float, rows: int | None = None) -> None:
        """Seal the root span with the statement's totals."""
        self.root.sim_ms = sim_ms
        if rows is not None:
            self.root.attrs["rows"] = rows

    # -- reporting -----------------------------------------------------------
    @property
    def sim_ms(self) -> float:
        return self.root.sim_ms

    def operator_spans(self) -> list[Span]:
        return [s for _d, s in self.root.walk() if s.kind == "operator"]

    def as_dict(self) -> dict:
        return {"statement": self.statement, "user": self.user,
                "trace_id": self.trace_id,
                "sim_ms": round(self.root.sim_ms, 3),
                "trace": self.root.as_dict()}

    def pretty(self) -> str:
        lines = []
        for depth, span in self.root.walk():
            rate = span.cache_hit_rate
            rate_text = "-" if rate is None else f"{rate:.0%}"
            lines.append(f"{'  ' * depth}{span.name}  "
                         f"rows={span.rows} blocks={span.blocks_read} "
                         f"cache={rate_text} sim_ms={span.sim_ms:.2f}")
        return "\n".join(lines)


def analyze_rows(profile: QueryProfile) -> list[dict]:
    """EXPLAIN ANALYZE rows: one per operator/region-scan span.

    Columns mirror what HBase+Spark tooling would report per operator:
    output rows, row batches processed (0 on the row-at-a-time path),
    HFile blocks read from disk, block-cache hits, the hit rate over
    touched blocks, and inclusive simulated milliseconds.
    """
    rows = []
    for depth, span in profile.root.walk():
        if span.kind not in ("operator", "region_scan"):
            continue
        # Depth relative to the first operator keeps the service span
        # out of the indentation budget.
        rate = span.cache_hit_rate
        rows.append({
            "operator": "  " * (depth - 1) + span.name,
            "rows": span.rows,
            "batches": span.attrs.get("batches", 0),
            "blocks_read": span.blocks_read,
            "cache_hits": span.cache_hits,
            "cache_hit_rate": None if rate is None else round(rate, 3),
            "sim_ms": round(span.sim_ms, 3),
        })
    return rows
