"""``python -m repro top`` — live region-heatmap demonstration.

The HBase master UI answers "which regions are hot, where do they
live, what has the cluster been doing?" at a glance; this demo plays
that role for the reproduction.  It stands up the service stack, loads
a seeded point table, drives a deliberately skewed read workload (all
window queries hit the same corner of the city), then renders:

* the region heatmap — ``sys.regions`` ordered by decayed read rate,
  so the skew is visible as a handful of hot regions on top;
* the cluster event feed — the tail of ``sys.events`` (flushes,
  compactions, splits) with simulated-clock timestamps;
* the catalog view — ``sys.tables`` with live row counts and sizes.

Everything goes through plain JustQL against the ``sys.*`` virtual
tables: what the demo prints, an operator can query.  Seeded; two runs
print identical tables.  ``--once`` renders a single frame (the CI
smoke mode); without it the demo renders a frame per workload pass.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.cli import format_result
from repro.service.client import JustClient
from repro.service.server import JustServer

#: Spatial extent the demo points are drawn from.
_AREA = (116.0, 39.8, 116.5, 40.1)
_T0 = 1_500_000_000.0
_DAY = 86_400.0

DEMO_USER = "ops"


def _load_table(client: JustClient, rows: int, seed: int,
                batch: int = 500) -> None:
    rng = random.Random(seed)
    lo_lng, lo_lat, hi_lng, hi_lat = _AREA
    client.execute_query(
        "CREATE TABLE poi (fid integer:primary key, name string, "
        "time date, geom point)")
    inserts = []
    for i in range(rows):
        lng = lo_lng + rng.random() * (hi_lng - lo_lng)
        lat = lo_lat + rng.random() * (hi_lat - lo_lat)
        t = _T0 + rng.random() * 5 * _DAY
        inserts.append(f"({i}, 'poi{i % 17}', {t:.0f}, "
                       f"st_makePoint({lng:.6f}, {lat:.6f}))")
    for start in range(0, len(inserts), batch):
        chunk = ", ".join(inserts[start:start + batch])
        client.execute_query(f"INSERT INTO poi VALUES {chunk}")


def _skewed_queries(seed: int, count: int = 6) -> list[str]:
    """Window queries all aimed at the same corner — a hot shard."""
    rng = random.Random(seed)
    lo_lng, lo_lat = _AREA[0], _AREA[1]
    queries = []
    for _ in range(count):
        lng = lo_lng + rng.random() * 0.05
        lat = lo_lat + rng.random() * 0.03
        t = _T0 + rng.random() * _DAY
        queries.append(
            f"SELECT fid, name FROM poi WHERE geom WITHIN "
            f"st_makeMBR({lng:.4f}, {lat:.4f}, {lng + 0.08:.4f}, "
            f"{lat + 0.05:.4f}) AND time BETWEEN {t:.0f} "
            f"AND {t + 2 * _DAY:.0f}")
    return queries


def _render_frame(client: JustClient, pass_no: int, out) -> None:
    print(f"\n== frame {pass_no}: region heatmap "
          f"(sys.regions by read_rate) ==", file=out)
    result = client.execute_query(
        "SELECT * FROM sys.regions ORDER BY read_rate DESC LIMIT 5")
    print(format_result(result), file=out)

    print("\n== cluster event feed (tail of sys.events) ==", file=out)
    result = client.execute_query(
        "SELECT seq, sim_ms, kind, table, region_id, server "
        "FROM sys.events ORDER BY seq DESC LIMIT 8")
    print(format_result(result), file=out)

    print("\n== catalog (sys.tables) ==", file=out)
    result = client.execute_query("SELECT * FROM sys.tables")
    print(format_result(result), file=out)


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Live region heatmap over the sys.* system tables.")
    parser.add_argument("--rows", type=int, default=1500,
                        help="points to load (default 1500)")
    parser.add_argument("--passes", type=int, default=3,
                        help="workload passes / frames (default 3)")
    parser.add_argument("--once", action="store_true",
                        help="render a single frame and exit "
                             "(CI smoke mode)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    passes = 1 if args.once else args.passes

    server = JustServer()
    client = JustClient(server, DEMO_USER)

    print(f"== load: {args.rows} points into 'poi' ==", file=out)
    _load_table(client, args.rows, args.seed)
    # Flush so reads touch SSTables and the event feed has entries.
    for table in server.engine.store.tables():
        table.flush()

    queries = _skewed_queries(args.seed)
    for pass_no in range(1, passes + 1):
        for sql in queries:
            client.execute_query(sql)
        _render_frame(client, pass_no, out)

    print("\n== event totals ==", file=out)
    totals = server.events.total_by_kind
    for kind in sorted(totals):
        print(f"{kind:>16}: {totals[kind]}", file=out)

    client.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
