"""The engine-facing monitoring pipeline: scrape → history → SLO → alert.

:class:`Monitor` composes the :class:`MetricsScraper` chore, the
:class:`MetricsHistory` store, and the :class:`SloManager` into one
object the engine owns (``engine.enable_monitoring()``), ticked from
the service layer the same way the balancer and replication chores are:
each statement's simulated-clock advance may trigger a scrape, and
every scrape re-evaluates the objectives so alerts fire on the same
timeline the incidents happen on.
"""

from __future__ import annotations

from repro.observability.history import (
    DEFAULT_TIERS,
    MetricsHistory,
    MetricsScraper,
)
from repro.observability.slo import (
    AvailabilityObjective,
    LatencyObjective,
    Objective,
    SloManager,
    default_windows,
)

#: Default scrape cadence: fine enough that the shortest default burn
#: window (base/12) holds several samples.
DEFAULT_SCRAPE_INTERVAL_MS = 250.0

#: Default latency-SLO threshold; must be one of the statement
#: histogram's bucket bounds (``DEFAULT_LATENCY_BUCKETS_MS``).
DEFAULT_LATENCY_THRESHOLD_MS = 500.0


def default_objectives(latency_threshold_ms: float =
                       DEFAULT_LATENCY_THRESHOLD_MS,
                       availability_target: float = 0.999,
                       latency_target: float = 0.99,
                       slo_base_ms: float = 60_000.0) -> list[Objective]:
    """The two SLOs every serving system starts with.

    * ``statement-availability`` — fraction of statements that neither
      errored nor were shed by admission control.
    * ``statement-latency`` — fraction of statements under the bucket
      threshold, from the exact cumulative histogram buckets.
    """
    windows = default_windows(slo_base_ms)
    return [
        AvailabilityObjective(
            name="statement-availability",
            target=availability_target,
            windows=windows,
            description="statements neither errored nor shed",
            total_series=("server.statements{status=ok}",
                          "server.statements{status=error}",
                          "admission.shed"),
            bad_series=("server.statements{status=error}",
                        "admission.shed")),
        LatencyObjective(
            name="statement-latency",
            target=latency_target,
            windows=windows,
            description=f"statements under "
                        f"{latency_threshold_ms:g} sim-ms",
            metric="server.statement_sim_ms",
            threshold_ms=latency_threshold_ms),
    ]


class Monitor:
    """Scraper + history + SLO manager, on one simulated clock."""

    def __init__(self, engine,
                 interval_ms: float = DEFAULT_SCRAPE_INTERVAL_MS,
                 tiers: tuple[tuple[int, int], ...] = DEFAULT_TIERS,
                 objectives: list[Objective] | None = None,
                 charge_clock: bool = True):
        self.engine = engine
        self.history = MetricsHistory(tiers)
        self.scraper = MetricsScraper(engine.metrics, engine.events,
                                      self.history,
                                      interval_ms=interval_ms,
                                      charge_clock=charge_clock)
        self.slos = SloManager(self.history, engine.events,
                               engine.metrics)
        for objective in (objectives if objectives is not None
                          else default_objectives()):
            self.slos.add(objective)
        engine.metrics.describe(
            "monitor.scrapes", "metrics-history scrape chore runs")
        engine.metrics.describe(
            "monitor.scrape_ms",
            "simulated milliseconds charged to scraping")
        engine.metrics.describe(
            "slo.burn_rate",
            "error-budget burn rate over the long alert window")

    def add_objective(self, objective: Objective) -> Objective:
        return self.slos.add(objective)

    def maybe_tick(self) -> bool:
        """Scrape + evaluate if the scrape interval elapsed."""
        if not self.scraper.maybe_tick():
            return False
        self.slos.evaluate(self.engine.events.now_ms)
        return True

    def tick(self) -> None:
        """Force a scrape + evaluation now (tests, demos)."""
        self.scraper.tick()
        self.slos.evaluate(self.engine.events.now_ms)

    # -- reporting -----------------------------------------------------------
    @property
    def now_ms(self) -> float:
        return self.engine.events.now_ms

    def history_rows(self, name: str | None = None,
                     start_ms: float | None = None) -> list[dict]:
        return self.history.rows(name=name, start_ms=start_ms)

    def slo_rows(self) -> list[dict]:
        return self.slos.rows(self.now_ms)

    def alert_rows(self) -> list[dict]:
        return self.slos.alert_rows()

    def snapshot(self) -> dict:
        firing = [a for a in self.slos.alert_rows()
                  if a["state"] == "firing"]
        return {"scrapes": self.scraper.scrapes,
                "series": len(self.history),
                "interval_ms": self.scraper.interval_ms,
                "total_scrape_ms": round(self.scraper.total_scrape_ms,
                                         3),
                "objectives": len(self.slos.objectives),
                "alerts_firing": len(firing)}
