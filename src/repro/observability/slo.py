"""SLOs, error budgets, and multi-window burn-rate alerting.

The Google-SRE workbook shape, on the simulated clock: an objective
declares a target (e.g. 99.9% of statements OK / under a latency
threshold), the **error budget** is ``1 - target``, and the **burn
rate** is how many times faster than budget-neutral the service is
consuming it (``bad_fraction / (1 - target)``).  Alerts use the
multi-window, multi-burn-rate recipe: a severity fires only when *both*
a long window (evidence the burn is sustained) and a short window
(evidence it is still happening) exceed the severity's burn-rate
factor, which keeps time-to-fire short for fast burns without paging on
blips.  Each (objective, window) pair runs a
pending → firing → resolved state machine emitting typed
:class:`~repro.observability.events.SloBurnEvent` /
:class:`~repro.observability.events.AlertEvent` into the cluster
:class:`~repro.observability.events.EventLog`.

SLIs are computed from the scraped :class:`MetricsHistory` with
counter-reset-aware ``increase()`` — availability from error/total
counters, latency from exact cumulative histogram buckets — never from
unwindowed lifetime quantiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observability.events import AlertEvent, SloBurnEvent
from repro.observability.history import MetricsHistory, suffixed_key
from repro.observability.metrics import Histogram


@dataclass(frozen=True)
class BurnWindow:
    """One severity tier of the multi-window burn-rate recipe."""

    severity: str       # "page" | "ticket"
    long_ms: float      # sustained-evidence window
    short_ms: float     # still-happening window
    factor: float       # burn-rate threshold for both windows
    for_ms: float = 0.0  # dwell in pending before firing


def default_windows(base_ms: float = 60_000.0) -> tuple[BurnWindow, ...]:
    """The SRE-workbook 1h/5m @14.4 + 6h/30m @6 table, time-scaled.

    Production burn windows are hours; statements here cost simulated
    milliseconds, so ``base_ms`` plays the role of "one hour" and the
    window ratios (12:1 long:short, 14.4×/6× factors) are preserved.
    """
    return (
        BurnWindow("page", long_ms=base_ms, short_ms=base_ms / 12.0,
                   factor=14.4, for_ms=base_ms / 24.0),
        BurnWindow("ticket", long_ms=6.0 * base_ms,
                   short_ms=base_ms / 2.0, factor=6.0,
                   for_ms=base_ms / 12.0),
    )


@dataclass
class Objective:
    """A declarative SLO over scraped series; subclasses define the SLI."""

    name: str
    target: float  # e.g. 0.999
    windows: tuple[BurnWindow, ...] = ()
    description: str = ""
    #: Window for error-budget accounting (a stand-in for the 30-day
    #: compliance period); defaults to 4× the longest alert window.
    budget_window_ms: float = 0.0

    kind = "objective"

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1): {self.target}")
        if not self.windows:
            self.windows = default_windows()
        if not self.budget_window_ms:
            self.budget_window_ms = 4.0 * max(w.long_ms
                                              for w in self.windows)

    @property
    def budget(self) -> float:
        return 1.0 - self.target

    def bad_fraction(self, history: MetricsHistory, start_ms: float,
                     end_ms: float) -> float | None:
        """SLI bad-event fraction over a window; None = no data."""
        raise NotImplementedError

    def burn_rate(self, history: MetricsHistory, start_ms: float,
                  end_ms: float) -> float | None:
        bad = self.bad_fraction(history, start_ms, end_ms)
        return None if bad is None else bad / self.budget

    def budget_remaining(self, history: MetricsHistory,
                         now_ms: float) -> float:
        """Fraction of the budget-window error budget left (can go < 0)."""
        bad = self.bad_fraction(history, now_ms - self.budget_window_ms,
                                now_ms)
        if bad is None:
            return 1.0
        return 1.0 - bad / self.budget

    def exemplar(self, registry) -> str:
        """Trace id of an offending query, if the SLI can name one."""
        return ""

    @property
    def signal(self) -> str:
        """Human-readable description of the measured series."""
        return ""


@dataclass
class AvailabilityObjective(Objective):
    """Fraction of good events from total/bad counter series.

    ``total_series``/``bad_series`` name scraped history series
    (flattened registry keys); increases are summed across each group,
    so e.g. ``server.statements{status=ok}`` + ``...{status=error}``
    can form the total while errors + sheds form the bad count.
    """

    total_series: tuple[str, ...] = ()
    bad_series: tuple[str, ...] = ()

    kind = "availability"

    def bad_fraction(self, history: MetricsHistory, start_ms: float,
                     end_ms: float) -> float | None:
        total = sum(
            history.query("increase", name, end_ms - start_ms, end_ms)
            for name in self.total_series)
        if total <= 0:
            return None
        bad = sum(
            history.query("increase", name, end_ms - start_ms, end_ms)
            for name in self.bad_series)
        return min(1.0, max(0.0, bad / total))

    @property
    def signal(self) -> str:
        return f"bad({','.join(self.bad_series)}) / " \
               f"total({','.join(self.total_series)})"


@dataclass
class LatencyObjective(Objective):
    """Fraction of observations above a histogram bucket threshold.

    Requires the histogram to have been created with a bucket bound at
    exactly ``threshold_ms`` (see ``DEFAULT_LATENCY_BUCKETS_MS``): the
    windowed bad fraction is then *exact* —
    ``increase(count) - increase(bucket_le_threshold)`` — rather than
    an approximation from quantiles.
    """

    metric: str = ""          # flattened histogram key
    threshold_ms: float = 0.0

    kind = "latency"

    def bad_fraction(self, history: MetricsHistory, start_ms: float,
                     end_ms: float) -> float | None:
        window_ms = end_ms - start_ms
        total = history.query("increase",
                              suffixed_key(self.metric, "count"),
                              window_ms, end_ms)
        if total <= 0:
            return None
        good = history.query(
            "increase",
            suffixed_key(self.metric,
                         f"bucket_le_{self.threshold_ms:g}"),
            window_ms, end_ms)
        return min(1.0, max(0.0, (total - good) / total))

    def exemplar(self, registry) -> str:
        if registry is None:
            return ""
        metric = registry._metrics.get(self.metric)
        if not isinstance(metric, Histogram):
            return ""
        exemplar = metric.exemplar_above(self.threshold_ms)
        return str(exemplar) if exemplar is not None else ""

    @property
    def signal(self) -> str:
        return f"{self.metric} > {self.threshold_ms:g} sim-ms"


#: Alert-state ordering for the per-objective "worst state" rollup.
_STATE_RANK = {"ok": 0, "resolved": 1, "pending": 2, "firing": 3}


@dataclass
class AlertState:
    """Live state of one (objective, burn window) alert."""

    slo: str
    window: BurnWindow
    state: str = "ok"
    pending_since_ms: float | None = None
    fired_at_ms: float | None = None
    resolved_at_ms: float | None = None
    burn_short: float = 0.0
    burn_long: float = 0.0
    trace_id: str = ""
    times_fired: int = 0
    updated_ms: float = 0.0

    def row(self) -> dict:
        return {"slo": self.slo, "severity": self.window.severity,
                "state": self.state,
                "burn_short": round(self.burn_short, 3),
                "burn_long": round(self.burn_long, 3),
                "factor": self.window.factor,
                "short_ms": self.window.short_ms,
                "long_ms": self.window.long_ms,
                "pending_since_ms": self.pending_since_ms,
                "fired_at_ms": self.fired_at_ms,
                "times_fired": self.times_fired,
                "trace_id": self.trace_id,
                "updated_ms": round(self.updated_ms, 3)}


class SloManager:
    """Evaluates objectives against the history; runs the alert FSM."""

    def __init__(self, history: MetricsHistory, events,
                 registry=None):
        self.history = history
        self.events = events
        self.registry = registry
        self.objectives: list[Objective] = []
        self._alerts: dict[tuple[str, str], AlertState] = {}
        self.evaluations = 0

    def add(self, objective: Objective) -> Objective:
        self.objectives.append(objective)
        for window in objective.windows:
            key = (objective.name, window.severity)
            self._alerts[key] = AlertState(objective.name, window)
        return objective

    def get(self, name: str) -> Objective | None:
        for objective in self.objectives:
            if objective.name == name:
                return objective
        return None

    def alert(self, slo: str, severity: str) -> AlertState | None:
        return self._alerts.get((slo, severity))

    def evaluate(self, now_ms: float) -> None:
        self.evaluations += 1
        for objective in self.objectives:
            for window in objective.windows:
                self._evaluate_window(objective, window, now_ms)
            if self.registry is not None:
                self.registry.gauge(
                    "slo.budget_remaining", slo=objective.name).set(
                    round(objective.budget_remaining(self.history,
                                                     now_ms), 6))

    def _evaluate_window(self, objective: Objective, window: BurnWindow,
                         now_ms: float) -> None:
        burn_long = objective.burn_rate(
            self.history, now_ms - window.long_ms, now_ms)
        burn_short = objective.burn_rate(
            self.history, now_ms - window.short_ms, now_ms)
        breach = (burn_long is not None and burn_short is not None
                  and burn_long >= window.factor
                  and burn_short >= window.factor)
        alert = self._alerts[(objective.name, window.severity)]
        alert.burn_long = burn_long or 0.0
        alert.burn_short = burn_short or 0.0
        alert.updated_ms = now_ms
        if self.registry is not None:
            self.registry.gauge("slo.burn_rate", slo=objective.name,
                                severity=window.severity).set(
                round(alert.burn_long, 6))

        if alert.state in ("ok", "resolved"):
            if breach:
                alert.state = "pending"
                alert.pending_since_ms = now_ms
                self.events.emit(SloBurnEvent(
                    slo=objective.name, severity=window.severity,
                    burn_short=round(alert.burn_short, 3),
                    burn_long=round(alert.burn_long, 3),
                    threshold=window.factor))
        elif alert.state == "pending":
            if not breach:
                alert.state = "ok"
                alert.pending_since_ms = None
            elif now_ms - alert.pending_since_ms >= window.for_ms:
                alert.state = "firing"
                alert.fired_at_ms = now_ms
                alert.times_fired += 1
                alert.trace_id = objective.exemplar(self.registry)
                if self.registry is not None:
                    self.registry.counter(
                        "slo.alerts_fired", slo=objective.name,
                        severity=window.severity).inc()
                self.events.emit(AlertEvent(
                    slo=objective.name, severity=window.severity,
                    state="firing",
                    burn_short=round(alert.burn_short, 3),
                    burn_long=round(alert.burn_long, 3),
                    trace_id=alert.trace_id))
        elif alert.state == "firing":
            if not breach:
                alert.state = "resolved"
                alert.resolved_at_ms = now_ms
                self.events.emit(AlertEvent(
                    slo=objective.name, severity=window.severity,
                    state="resolved",
                    burn_short=round(alert.burn_short, 3),
                    burn_long=round(alert.burn_long, 3),
                    trace_id=alert.trace_id))

    # -- reporting -----------------------------------------------------------
    def worst_state(self, slo: str) -> str:
        states = [a.state for (name, _sev), a in self._alerts.items()
                  if name == slo]
        return max(states, key=_STATE_RANK.__getitem__,
                   default="ok") if states else "ok"

    def rows(self, now_ms: float) -> list[dict]:
        """``sys.slos`` rows: one per objective."""
        out = []
        for objective in self.objectives:
            page = next((a for (name, sev), a in self._alerts.items()
                         if name == objective.name and sev == "page"),
                        None)
            out.append({
                "slo": objective.name, "kind": objective.kind,
                "target": objective.target,
                "signal": objective.signal,
                "state": self.worst_state(objective.name),
                "budget_remaining": round(
                    objective.budget_remaining(self.history, now_ms),
                    4),
                "burn_short": round(page.burn_short, 3) if page else 0.0,
                "burn_long": round(page.burn_long, 3) if page else 0.0,
                "description": objective.description,
            })
        return out

    def alert_rows(self) -> list[dict]:
        """``sys.alerts`` rows: one per (objective, severity)."""
        return [self._alerts[key].row()
                for key in sorted(self._alerts)]
