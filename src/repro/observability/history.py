"""Metrics time-series history: bounded retention + window queries.

The :class:`MetricsRegistry` is point-in-time; this module adds the
retained dimension a monitoring pipeline needs.  A
:class:`MetricsScraper` chore runs on the simulated clock (the same
``maybe_tick`` pattern as the balancer and replication anti-entropy
chores) and samples every registry series into a :class:`MetricsHistory`
— a per-series ring of ``(sim_ms, value)`` points organised in
**stride-downsampling tiers**: tier 0 keeps every scrape, tier 1 every
8th, tier 2 every 64th, each in its own bounded ring.  Recent history is
dense, old history is sparse, and memory is O(tiers × capacity) per
series no matter how long the cluster runs — the same shape as
Prometheus retention + recording rules or an RRDtool archive set.

Window queries (:func:`increase`, :func:`rate_per_s`,
:func:`avg_over_time`, …) are **counter-reset aware**: a sample smaller
than its predecessor means the process restarted (failover, promote),
and the new value counts as growth from zero instead of producing a
negative rate — Prometheus ``rate()`` semantics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.observability.metrics import Counter, Histogram

#: Default downsampling tiers as ``(stride, capacity)``: a scrape is
#: recorded into every tier whose stride divides its index.  With a
#: 250 sim-ms scrape interval this retains ~2 min of raw points,
#: ~17 min at 2 s resolution and ~2.3 h at 16 s resolution.
DEFAULT_TIERS: tuple[tuple[int, int], ...] = ((1, 512), (8, 512),
                                              (64, 512))


# -- window functions over point lists ----------------------------------------

def increase(points: list[tuple[float, float]]) -> float:
    """Total counter growth across ``points``, reset-aware, never < 0.

    A drop between adjacent samples is a counter reset (restart or
    failover re-registration): the post-reset value is growth from
    zero.  Growth before the reset that the previous sample had not yet
    seen is unavoidably lost, exactly as in Prometheus ``increase()``.
    """
    total = 0.0
    for (_, prev), (_, cur) in zip(points, points[1:]):
        delta = cur - prev
        total += delta if delta >= 0 else cur
    return total


def rate_per_s(points: list[tuple[float, float]]) -> float:
    """Reset-aware per-second rate over ``points`` (0 if degenerate)."""
    if len(points) < 2:
        return 0.0
    elapsed_ms = points[-1][0] - points[0][0]
    if elapsed_ms <= 0:
        return 0.0
    return increase(points) / (elapsed_ms / 1000.0)


def avg_over_time(points: list[tuple[float, float]]) -> float:
    return (sum(v for _, v in points) / len(points)) if points else 0.0


def max_over_time(points: list[tuple[float, float]]) -> float:
    return max((v for _, v in points), default=0.0)


def min_over_time(points: list[tuple[float, float]]) -> float:
    return min((v for _, v in points), default=0.0)


def last_over_time(points: list[tuple[float, float]]) -> float:
    return points[-1][1] if points else 0.0


WINDOW_FUNCS = {
    "increase": increase,
    "rate": rate_per_s,
    "avg_over_time": avg_over_time,
    "max_over_time": max_over_time,
    "min_over_time": min_over_time,
    "last_over_time": last_over_time,
}


@dataclass
class Series:
    """One metric series: tiered rings of ``(sim_ms, value)`` points."""

    name: str
    kind: str  # "counter" | "gauge"
    tiers: tuple[tuple[int, int], ...] = DEFAULT_TIERS
    rings: list[deque] = field(default_factory=list)
    samples: int = 0  # total points ever recorded (drives tier strides)

    def __post_init__(self) -> None:
        if not self.rings:
            self.rings = [deque(maxlen=capacity)
                          for _stride, capacity in self.tiers]

    def record(self, sim_ms: float, value: float) -> None:
        index = self.samples
        self.samples += 1
        for (stride, _capacity), ring in zip(self.tiers, self.rings):
            if index % stride == 0:
                ring.append((sim_ms, value))

    def points(self, start_ms: float | None = None,
               end_ms: float | None = None,
               baseline: bool = False) -> list[tuple[float, float]]:
        """Points in ``[start_ms, end_ms]`` from the finest covering tier.

        Tier selection mirrors a Prometheus federation of retention
        tiers: use the densest tier whose retained range still reaches
        back to ``start_ms``; when no tier covers the window, fall back
        to whichever tier reaches furthest back (densest on ties, so a
        young series is always served raw).

        With ``baseline`` the last retained point *before* ``start_ms``
        is prepended.  Counters are step functions sampled at scrapes,
        so ``increase`` over a window is exact only against the value
        the counter held *entering* the window — without the baseline a
        window spanning fewer than two scrapes reads as zero growth,
        which starves short burn-rate windows whenever statements cost
        more simulated time than the window spans.
        """
        chosen = None
        for ring in self.rings:
            if not ring:
                continue
            if start_ms is not None and ring[0][0] <= start_ms:
                chosen = ring
                break
            if chosen is None or ring[0][0] < chosen[0][0]:
                chosen = ring
        if chosen is None:
            return []
        selected = [(ts, value) for ts, value in chosen
                    if (start_ms is None or ts >= start_ms)
                    and (end_ms is None or ts <= end_ms)]
        if baseline and start_ms is not None:
            before = None
            for ts, value in chosen:
                if ts >= start_ms:
                    break
                before = (ts, value)
            if before is not None:
                selected.insert(0, before)
        return selected

    def tier_points(self, tier: int) -> list[tuple[float, float]]:
        return list(self.rings[tier])


class MetricsHistory:
    """All retained series plus the PromQL-flavoured query helpers."""

    def __init__(self,
                 tiers: tuple[tuple[int, int], ...] = DEFAULT_TIERS):
        self.tiers = tuple(tiers)
        self.series: dict[str, Series] = {}

    def record(self, name: str, kind: str, sim_ms: float,
               value: float) -> None:
        series = self.series.get(name)
        if series is None:
            series = Series(name, kind, self.tiers)
            self.series[name] = series
        series.record(sim_ms, value)

    def get(self, name: str) -> Series | None:
        return self.series.get(name)

    def names(self, prefix: str = "") -> list[str]:
        return sorted(n for n in self.series if n.startswith(prefix))

    def __len__(self) -> int:
        return len(self.series)

    def window(self, name: str, start_ms: float | None,
               end_ms: float | None,
               baseline: bool = False) -> list[tuple[float, float]]:
        series = self.series.get(name)
        return (series.points(start_ms, end_ms, baseline=baseline)
                if series else [])

    def query(self, func: str, name: str, window_ms: float,
              now_ms: float) -> float:
        """``func(name[window_ms])`` evaluated at ``now_ms``.

        Counter deltas (``increase``/``rate``) use the baseline sample
        entering the window, so they stay exact when the window holds
        fewer than two scrapes; the ``*_over_time`` aggregations see
        only in-window points.
        """
        return WINDOW_FUNCS[func](
            self.window(name, now_ms - window_ms, now_ms,
                        baseline=func in ("increase", "rate")))

    def rate(self, name: str, window_ms: float, now_ms: float) -> float:
        return self.query("rate", name, window_ms, now_ms)

    def increase(self, name: str, window_ms: float,
                 now_ms: float) -> float:
        return self.query("increase", name, window_ms, now_ms)

    def rows(self, name: str | None = None,
             start_ms: float | None = None) -> list[dict]:
        """``sys.metrics_history`` rows: every retained point, per tier.

        ``rate_per_s`` is the reset-aware rate between a point and its
        tier predecessor (NULL for gauges and for each tier's first
        retained point), so plain JustQL ``WHERE``/``GROUP BY`` over
        this table is already a windowed rate query.
        """
        out: list[dict] = []
        names = [name] if name is not None else self.names()
        for series_name in names:
            series = self.series.get(series_name)
            if series is None:
                continue
            for tier, ring in enumerate(series.rings):
                prev: tuple[float, float] | None = None
                for ts, value in ring:
                    rate = None
                    if series.kind == "counter" and prev is not None:
                        rate = rate_per_s([prev, (ts, value)])
                    prev = (ts, value)
                    if start_ms is not None and ts < start_ms:
                        continue
                    out.append({"name": series_name,
                                "kind": series.kind, "tier": tier,
                                "ts_ms": round(ts, 3), "value": value,
                                "rate_per_s":
                                    None if rate is None
                                    else round(rate, 6)})
        return out


def suffixed_key(key: str, suffix: str) -> str:
    """Attach ``_suffix`` to a flattened key's *name*, before labels."""
    base, brace, labels = key.partition("{")
    return f"{base}_{suffix}{brace}{labels}"


class MetricsScraper:
    """Simulated-clock chore sampling the registry into the history.

    Runs from ``JustServer._observe_statement`` via :meth:`maybe_tick`,
    like the balancer and anti-entropy chores.  Each scrape walks every
    registry series; histograms are exploded into counter series
    (``_count``, ``_sum``, cumulative ``_bucket_le_*``) and gauge
    series (``_p50``/``_p95``/``_p99``), so the SLO layer can take
    exact windowed increases over latency distributions.

    Scraping is not free in real clusters and is not free here: each
    tick charges a modeled cost (base + per-series) onto the shared
    simulated clock and accounts it in ``total_scrape_ms`` so the
    benchmark can report monitoring overhead honestly.
    """

    def __init__(self, registry, events, history: MetricsHistory,
                 interval_ms: float = 250.0,
                 base_cost_ms: float = 0.05,
                 cost_per_series_ms: float = 0.002,
                 charge_clock: bool = True):
        self.registry = registry
        self.events = events
        self.history = history
        self.interval_ms = interval_ms
        self.base_cost_ms = base_cost_ms
        self.cost_per_series_ms = cost_per_series_ms
        self.charge_clock = charge_clock
        self.scrapes = 0
        self.total_scrape_ms = 0.0
        self._last_run_ms = -float("inf")

    def maybe_tick(self) -> bool:
        now = self.events.now_ms
        if now - self._last_run_ms < self.interval_ms:
            return False
        self.tick()
        return True

    def tick(self) -> None:
        now = self.events.now_ms
        self._last_run_ms = now
        recorded = 0
        for key, metric in self.registry.items():
            recorded += self._scrape_metric(key, metric, now)
        cost = self.base_cost_ms + self.cost_per_series_ms * recorded
        self.scrapes += 1
        self.total_scrape_ms += cost
        if self.charge_clock:
            self.events.advance(cost)
        self.registry.counter("monitor.scrapes").inc()
        self.registry.counter("monitor.scrape_ms").inc(cost)
        self.registry.gauge("monitor.series").set(recorded)

    def _scrape_metric(self, key: str, metric, now: float) -> int:
        if not isinstance(metric, Histogram):
            kind = "counter" if isinstance(metric, Counter) else "gauge"
            self.history.record(key, kind, now, metric.value)
            return 1
        # Histogram: explode into exact counters + quantile gauges.
        self.history.record(suffixed_key(key, "count"), "counter", now,
                            metric.count)
        self.history.record(suffixed_key(key, "sum"), "counter", now,
                            metric.sum)
        recorded = 2
        for q in ("p50", "p95", "p99"):
            self.history.record(suffixed_key(key, q), "gauge", now,
                                getattr(metric, q))
            recorded += 1
        for bound, count in metric.bucket_counts():
            self.history.record(
                suffixed_key(key, f"bucket_le_{bound:g}"), "counter",
                now, count)
            recorded += 1
        return recorded
