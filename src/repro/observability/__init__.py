"""Query-level observability (the ops layer the paper's evaluation implies).

The paper evaluates JUST through per-query latency and I/O breakdowns
(Sections VI-B–VI-D); reproducing those figures credibly needs the same
instrumentation a production HBase/Spark deployment would have:

* :class:`~repro.observability.metrics.MetricsRegistry` — process-wide
  counters, gauges, and quantile histograms that the key-value store,
  the SQL physical operators, the admission controller, and the circuit
  breaker all report into (the Prometheus-registry role).
* :class:`~repro.observability.profile.QueryProfile` — per-statement
  trace spans (service → SQL operator → region scan) carried on the
  :class:`~repro.resilience.RequestContext`, the OpenTelemetry-trace
  role; ``EXPLAIN ANALYZE`` renders the operator spans as an annotated
  plan tree.
* :class:`~repro.observability.slowlog.SlowQueryLog` — a bounded log of
  statements whose simulated latency crossed a configurable threshold
  (MySQL's slow-query log / HBase's responseTooSlow).
* :class:`~repro.observability.events.EventLog` — a bounded ring of
  typed cluster events (flush/compaction/split/failover/WAL checkpoint/
  breaker trip/admission shed/session expiry) stamped on the simulated
  clock, queryable as the ``sys.events`` system table (the HBase
  master-UI events page / ``performance_schema`` role).
"""

from repro.observability.events import (
    AdmissionShedEvent,
    BreakerTripEvent,
    CompactionEvent,
    DecayedRate,
    Event,
    EventLog,
    FailoverEvent,
    FlushEvent,
    SessionExpiredEvent,
    SplitEvent,
    WalCheckpointEvent,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.profile import QueryProfile, Span, analyze_rows
from repro.observability.slowlog import SlowQueryEntry, SlowQueryLog

__all__ = [
    "AdmissionShedEvent",
    "BreakerTripEvent",
    "CompactionEvent",
    "Counter",
    "DecayedRate",
    "Event",
    "EventLog",
    "FailoverEvent",
    "FlushEvent",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryProfile",
    "SessionExpiredEvent",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "SplitEvent",
    "WalCheckpointEvent",
    "analyze_rows",
]
