"""Query-level observability (the ops layer the paper's evaluation implies).

The paper evaluates JUST through per-query latency and I/O breakdowns
(Sections VI-B–VI-D); reproducing those figures credibly needs the same
instrumentation a production HBase/Spark deployment would have:

* :class:`~repro.observability.metrics.MetricsRegistry` — process-wide
  counters, gauges, and quantile histograms that the key-value store,
  the SQL physical operators, the admission controller, and the circuit
  breaker all report into (the Prometheus-registry role).
* :class:`~repro.observability.profile.QueryProfile` — per-statement
  trace spans (service → SQL operator → region scan) carried on the
  :class:`~repro.resilience.RequestContext`, the OpenTelemetry-trace
  role; ``EXPLAIN ANALYZE`` renders the operator spans as an annotated
  plan tree.
* :class:`~repro.observability.slowlog.SlowQueryLog` — a bounded log of
  statements whose simulated latency crossed a configurable threshold
  (MySQL's slow-query log / HBase's responseTooSlow).
* :class:`~repro.observability.events.EventLog` — a bounded ring of
  typed cluster events (flush/compaction/split/failover/WAL checkpoint/
  breaker trip/admission shed/session expiry) stamped on the simulated
  clock, queryable as the ``sys.events`` system table (the HBase
  master-UI events page / ``performance_schema`` role).
* :class:`~repro.observability.history.MetricsHistory` +
  :class:`~repro.observability.history.MetricsScraper` — the retained
  dimension: a simulated-clock scrape chore samples the registry into
  bounded stride-downsampling tiers with counter-reset-aware
  ``rate()``/``increase()`` window queries (the Prometheus-TSDB role).
* :class:`~repro.observability.slo.SloManager` — declarative SLOs,
  error budgets, and Google-SRE multi-window burn-rate alerts through
  a pending → firing → resolved state machine (the Alertmanager role).
* :class:`~repro.observability.monitor.Monitor` — the composed
  pipeline the engine owns (``engine.enable_monitoring()``), surfaced
  as ``sys.metrics_history`` / ``sys.slos`` / ``sys.alerts``.
"""

from repro.observability.events import (
    AdmissionShedEvent,
    AlertEvent,
    BreakerTripEvent,
    CompactionEvent,
    DecayedRate,
    Event,
    EventLog,
    FailoverEvent,
    FlushEvent,
    SessionExpiredEvent,
    SloBurnEvent,
    SplitEvent,
    WalCheckpointEvent,
)
from repro.observability.history import (
    MetricsHistory,
    MetricsScraper,
    Series,
)
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.monitor import Monitor, default_objectives
from repro.observability.profile import QueryProfile, Span, analyze_rows
from repro.observability.slo import (
    AvailabilityObjective,
    BurnWindow,
    LatencyObjective,
    Objective,
    SloManager,
    default_windows,
)
from repro.observability.slowlog import SlowQueryEntry, SlowQueryLog

__all__ = [
    "AdmissionShedEvent",
    "AlertEvent",
    "AvailabilityObjective",
    "BreakerTripEvent",
    "BurnWindow",
    "CompactionEvent",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DecayedRate",
    "Event",
    "EventLog",
    "FailoverEvent",
    "FlushEvent",
    "Gauge",
    "Histogram",
    "LatencyObjective",
    "MetricsHistory",
    "MetricsRegistry",
    "MetricsScraper",
    "Monitor",
    "Objective",
    "QueryProfile",
    "Series",
    "SessionExpiredEvent",
    "SloBurnEvent",
    "SloManager",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "SplitEvent",
    "WalCheckpointEvent",
    "analyze_rows",
    "default_objectives",
    "default_windows",
]
