"""``python -m repro metrics`` — query-observability demonstration.

Stands up the service stack, loads a seeded point table, and drives a
repeated spatio-temporal window workload so the block cache actually
warms up (the paper's benchmarks defeat it on purpose; operations
staff would not).  Along the way it:

* prints ``EXPLAIN ANALYZE`` for a representative window query — the
  plan tree annotated with per-operator rows, blocks read, cache hits,
  and simulated milliseconds;
* flushes and major-compacts the store mid-run to show the hit ratio
  and cache ``used_bytes`` staying truthful while SSTables die;
* dumps the process-wide metrics registry (the ``/metrics`` payload)
  and the slow-query log.

Everything is seeded; two runs print identical tables.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.cli import format_result
from repro.service.client import JustClient
from repro.service.server import JustServer

#: Spatial extent the demo points (and query windows) are drawn from.
_AREA = (116.0, 39.8, 116.5, 40.1)
_T0 = 1_500_000_000.0
_DAY = 86_400.0

DEMO_USER = "ops"


def _build_workload(rows: int, seed: int):
    rng = random.Random(seed)
    lo_lng, lo_lat, hi_lng, hi_lat = _AREA
    inserts = []
    for i in range(rows):
        lng = lo_lng + rng.random() * (hi_lng - lo_lng)
        lat = lo_lat + rng.random() * (hi_lat - lo_lat)
        t = _T0 + rng.random() * 5 * _DAY
        inserts.append(f"({i}, 'poi{i % 17}', {t:.0f}, "
                       f"st_makePoint({lng:.6f}, {lat:.6f}))")
    windows = []
    for _ in range(8):
        lng = lo_lng + rng.random() * 0.3
        lat = lo_lat + rng.random() * 0.15
        t = _T0 + rng.random() * 3 * _DAY
        windows.append(
            f"SELECT fid, name FROM poi WHERE geom WITHIN "
            f"st_makeMBR({lng:.4f}, {lat:.4f}, {lng + 0.12:.4f}, "
            f"{lat + 0.08:.4f}) AND time BETWEEN {t:.0f} "
            f"AND {t + _DAY:.0f}")
    return inserts, windows


def _load_table(client: JustClient, inserts: list[str],
                batch: int = 500) -> None:
    client.execute_query(
        "CREATE TABLE poi (fid integer:primary key, name string, "
        "time date, geom point)")
    for start in range(0, len(inserts), batch):
        chunk = ", ".join(inserts[start:start + batch])
        client.execute_query(f"INSERT INTO poi VALUES {chunk}")


def _cache_line(server: JustServer) -> str:
    stats = server.engine.store.stats
    touched = stats.cache_hits + stats.blocks_read
    ratio = stats.cache_hits / touched if touched else 0.0
    used = sum(server.engine.store.cache_for(s).used_bytes
               for s in range(server.engine.store.num_servers))
    return (f"blocks_read={stats.blocks_read} "
            f"cache_hits={stats.cache_hits} hit_ratio={ratio:.1%} "
            f"cache_used_bytes={used}")


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description="Observability demo: metrics registry, "
                    "EXPLAIN ANALYZE, slow-query log.")
    parser.add_argument("--rows", type=int, default=2000,
                        help="points to load (default 2000)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="passes over the query set (default 3)")
    parser.add_argument("--slow-ms", type=float, default=50.0,
                        help="slow-query threshold in simulated ms "
                             "(default 50)")
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args(argv)

    server = JustServer(slow_query_ms=args.slow_ms)
    client = JustClient(server, DEMO_USER)
    inserts, windows = _build_workload(args.rows, args.seed)

    print(f"== load: {args.rows} points into 'poi' ==", file=out)
    _load_table(client, inserts)

    # Flush so the read workload touches SSTable blocks, not memstores —
    # a cold cache the repeated passes can warm.
    for table in server.engine.store.tables():
        table.flush()

    print(f"\n== workload: {len(windows)} window queries x "
          f"{args.repeat} passes (flush+compact between passes) ==",
          file=out)
    for pass_no in range(1, args.repeat + 1):
        for sql in windows:
            client.execute_query(sql)
        print(f"pass {pass_no}: {_cache_line(server)}", file=out)
        if pass_no == 1:
            # Major-compact mid-run: every pre-compaction SSTable dies,
            # its cached blocks are invalidated, and the hit ratio keeps
            # counting honestly against the new files.
            for table in server.engine.store.tables():
                table.flush()
                table.compact()
            print("  (flushed + major-compacted every table)", file=out)

    print("\n== EXPLAIN ANALYZE of one window query ==", file=out)
    result = client.execute_query("EXPLAIN ANALYZE " + windows[0])
    print(format_result(result), file=out)

    print("\n== /metrics (registry dump) ==", file=out)
    server.metrics_snapshot()  # refresh derived gauges
    print(server.metrics.render_text(), file=out)

    print("\n== slow-query log (threshold "
          f"{args.slow_ms:g} sim-ms) ==", file=out)
    entries = server.slow_query_log.entries()
    if not entries:
        print("(empty)", file=out)
    for entry in entries[-5:]:
        statement = entry.statement.replace("\n", " ")
        if len(statement) > 72:
            statement = statement[:71] + "…"
        print(f"#{entry.seq} {entry.sim_ms:8.1f} ms  "
              f"user={entry.user}  {statement}", file=out)
    if len(entries) > 5:
        print(f"... ({len(entries) - 5} older entries)", file=out)

    client.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
