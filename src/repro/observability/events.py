"""Structured cluster event log (the HBase master-UI events analogue).

Background work in the engine — flushes, compactions, splits, failovers,
WAL checkpoints — and service-level incidents — breaker trips, admission
sheds, session expiries — used to happen silently.  This module gives
each of them a typed event, stamped with a sequence number and the
cluster's *simulated* clock, collected in a bounded ring:

* :class:`EventLog` — the ring.  One instance per engine, threaded into
  the kvstore and the service layer; ``emit`` stamps, ``events`` /
  ``as_dicts`` read back, ``total_by_kind`` survives ring eviction.
  The log also owns the cluster-wide simulated clock (``now_ms``),
  advanced by the service layer with each statement's simulated cost,
  so event timestamps line up with query latencies.
* The ``*Event`` dataclasses — one per phenomenon, each carrying the
  fields an operator would want on a dashboard, plus a uniform
  :meth:`Event.row` projection feeding the ``sys.events`` system table.
* :class:`DecayedRate` — an exponentially-decayed per-second rate on
  the simulated clock, used for the per-region read/write hotness
  surfaced by ``sys.regions`` (HBase's per-region request counts).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field, fields

DEFAULT_CAPACITY = 1024


@dataclass
class Event:
    """Base for all cluster events.

    ``seq`` and ``sim_ms`` are stamped by :meth:`EventLog.emit`;
    subclasses set ``kind`` as a plain class attribute and declare their
    payload fields.
    """

    kind = "event"
    seq: int = field(default=0, init=False)
    sim_ms: float = field(default=0.0, init=False)

    #: Fields every event exposes as first-class ``sys.events`` columns
    #: (absent ones render as empty string / None).
    _ROW_FIELDS = ("table", "region_id", "server")

    def as_dict(self) -> dict:
        out = {"seq": self.seq, "sim_ms": round(self.sim_ms, 3),
               "kind": self.kind}
        for f in fields(self):
            if f.name in ("seq", "sim_ms"):
                continue
            out[f.name] = getattr(self, f.name)
        return out

    def row(self) -> dict:
        """The uniform ``sys.events`` row: shared columns + ``detail``."""
        detail = []
        for f in fields(self):
            if f.name in ("seq", "sim_ms") or f.name in self._ROW_FIELDS:
                continue
            detail.append(f"{f.name}={getattr(self, f.name)}")
        return {"seq": self.seq,
                "sim_ms": round(self.sim_ms, 3),
                "kind": self.kind,
                "table": getattr(self, "table", ""),
                "region_id": getattr(self, "region_id", None),
                "server": getattr(self, "server", None),
                "detail": " ".join(detail)}


@dataclass
class FlushEvent(Event):
    """A region flushed its memstore into a new SSTable."""

    kind = "flush"
    table: str = ""
    region_id: int = 0
    server: int = 0
    bytes_flushed: int = 0
    entries: int = 0


@dataclass
class WalCheckpointEvent(Event):
    """A flush checkpointed the region's WAL up to ``seqno``."""

    kind = "wal_checkpoint"
    table: str = ""
    region_id: int = 0
    server: int = 0
    seqno: int = 0


@dataclass
class CompactionEvent(Event):
    """A region merged its SSTable runs into one."""

    kind = "compaction"
    table: str = ""
    region_id: int = 0
    server: int = 0
    runs: int = 0
    read_bytes: int = 0
    bytes_after: int = 0


@dataclass
class SplitEvent(Event):
    """A region split into two daughters at ``split_key``."""

    kind = "split"
    table: str = ""
    region_id: int = 0
    server: int = 0
    left_region_id: int = 0
    right_region_id: int = 0
    split_key: str = ""


@dataclass
class RegionMovedEvent(Event):
    """The balancer moved a region to ``server`` (from ``from_server``).

    The shared ``server`` column reports the *destination* — where the
    region lives after the event — matching ``sys.regions``.
    """

    kind = "region_move"
    table: str = ""
    region_id: int = 0
    server: int = 0
    from_server: int = 0
    bytes_moved: int = 0
    move_ms: float = 0.0


@dataclass
class RegionMergedEvent(Event):
    """Two cold adjacent regions were merged into ``region_id``."""

    kind = "region_merge"
    table: str = ""
    region_id: int = 0
    server: int = 0
    left_region_id: int = 0
    right_region_id: int = 0
    bytes_after: int = 0


@dataclass
class BalancerRunEvent(Event):
    """One balancer loop iteration: what it saw and what it did."""

    kind = "balancer_run"
    run: int = 0
    moves: int = 0
    splits: int = 0
    merges: int = 0
    imbalance_before: float = 0.0
    imbalance_after: float = 0.0


@dataclass
class FailoverEvent(Event):
    """A crashed server's regions were reassigned and WAL-replayed."""

    kind = "failover"
    server: int = 0
    regions_reassigned: int = 0
    replayed_records: int = 0
    discarded_records: int = 0
    recovery_ms: float = 0.0


@dataclass
class ReplicaPromotedEvent(Event):
    """A follower replica was promoted to primary after a crash.

    The shared ``server`` column reports the promoted follower's server —
    where the region's primary lives after the event; ``from_server`` is
    the crashed primary.  ``catchup_records`` is how many surviving
    primary-WAL records the promoted replica had not yet applied and
    replayed during promotion (its replication lag at the crash).
    """

    kind = "replica_promote"
    table: str = ""
    region_id: int = 0
    server: int = 0
    from_server: int = 0
    applied_seqno: int = 0
    catchup_records: int = 0


@dataclass
class ReplicaLagEvent(Event):
    """A follower replica's shipping lag crossed the alert threshold."""

    kind = "replica_lag"
    table: str = ""
    region_id: int = 0
    server: int = 0
    lag_records: int = 0


@dataclass
class ReplicaRebuildEvent(Event):
    """The anti-entropy chore rebuilt a follower from the primary."""

    kind = "replica_rebuild"
    table: str = ""
    region_id: int = 0
    server: int = 0
    records_copied: int = 0


@dataclass
class BreakerTripEvent(Event):
    """A client circuit breaker opened after consecutive failures."""

    kind = "breaker_trip"
    consecutive_failures: int = 0


@dataclass
class AdmissionShedEvent(Event):
    """The admission controller shed a statement instead of queueing."""

    kind = "admission_shed"
    scope: str = ""
    count: int = 0
    limit: int = 0


@dataclass
class SessionExpiredEvent(Event):
    """An idle user session was expired by the server."""

    kind = "session_expired"
    user: str = ""
    session_id: str = ""
    idle_s: float = 0.0


@dataclass
class GeofenceAlertEvent(Event):
    """A streamed object entered or exited an active geofence."""

    kind = "geofence_alert"
    table: str = ""      # the fence plugin table
    alert: str = ""      # "enter" | "exit"
    gid: str = ""
    object_id: str = ""
    lng: float = 0.0
    lat: float = 0.0


@dataclass
class SloBurnEvent(Event):
    """An SLO started burning error budget fast enough to alert on."""

    kind = "slo_burn"
    slo: str = ""
    severity: str = ""       # burn window severity ("page" | "ticket")
    burn_short: float = 0.0  # burn rate over the short window
    burn_long: float = 0.0   # burn rate over the long window
    threshold: float = 0.0   # the window's burn-rate factor


@dataclass
class AlertEvent(Event):
    """An SLO alert changed state (pending → firing → resolved)."""

    kind = "alert"
    slo: str = ""
    severity: str = ""
    state: str = ""          # "firing" | "resolved"
    burn_short: float = 0.0
    burn_long: float = 0.0
    trace_id: str = ""       # exemplar trace of an offending query


class EventLog:
    """Bounded, simulated-clock-stamped ring of typed cluster events.

    Oldest events are dropped first once ``capacity`` is reached;
    ``total_by_kind`` keeps exact lifetime counts regardless.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        #: The cluster-wide simulated clock, in milliseconds.
        self.now_ms = 0.0
        #: Lifetime emit counts per kind (survive ring eviction).
        self.total_by_kind: dict[str, int] = {}

    def advance(self, ms: float) -> None:
        """Advance the simulated clock (e.g. by one statement's cost)."""
        if ms > 0:
            self.now_ms += ms

    def emit(self, event: Event) -> Event:
        """Stamp ``event`` with the next seq + current clock and store it."""
        self._seq += 1
        event.seq = self._seq
        event.sim_ms = self.now_ms
        self._events.append(event)
        self.total_by_kind[event.kind] = \
            self.total_by_kind.get(event.kind, 0) + 1
        return event

    @property
    def total_emitted(self) -> int:
        return self._seq

    def events(self, kind: str | None = None) -> list[Event]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def as_dicts(self, kind: str | None = None,
                 limit: int | None = None) -> list[dict]:
        selected = self.events(kind)
        if limit is not None and limit >= 0:
            selected = selected[-limit:]
        return [e.as_dict() for e in selected]

    def rows(self) -> list[dict]:
        """``sys.events`` rows, oldest first."""
        return [e.row() for e in self._events]

    def __len__(self) -> int:
        return len(self._events)


class DecayedRate:
    """Exponentially-decayed events-per-second on the simulated clock.

    Each recorded event adds weight 1; weight decays as
    ``exp(-dt / tau_ms)``, so the rate estimate forgets old traffic with
    time constant ``tau_ms``.  With a stalled clock nothing decays —
    a region that was just read keeps a positive rate, which is what the
    ``sys.regions`` hotness columns want.
    """

    __slots__ = ("tau_ms", "weight", "last_ms")

    def __init__(self, tau_ms: float = 30_000.0):
        self.tau_ms = tau_ms
        self.weight = 0.0
        self.last_ms = 0.0

    def _decay_to(self, now_ms: float) -> None:
        dt = now_ms - self.last_ms
        if dt > 0:
            self.weight *= math.exp(-dt / self.tau_ms)
            self.last_ms = now_ms

    def record(self, now_ms: float, amount: float = 1.0) -> None:
        self._decay_to(now_ms)
        self.weight += amount

    def rate_per_s(self, now_ms: float | None = None) -> float:
        if now_ms is not None:
            self._decay_to(now_ms)
        return self.weight / (self.tau_ms / 1000.0)
