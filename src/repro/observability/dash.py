"""``python -m repro dash`` — monitoring dashboard demonstration.

The Grafana-plus-Alertmanager role for the reproduction: stands up the
service stack with monitoring enabled
(:meth:`~repro.core.engine.JustEngine.enable_monitoring`), drives a
seeded query workload, then makes one region server *slow* (a
:class:`~repro.faults.plan.SlowServer` gray failure) and keeps the
workload running until the latency SLO's burn-rate alert fires.  Each
frame renders:

* unicode sparklines over ``sys.metrics_history`` — statement rate,
  p95 latency, and scrape activity, straight from the retained scrapes;
* the SLO scoreboard — ``sys.slos`` with burn rates and error-budget
  remaining;
* the alert table — ``sys.alerts`` with the pending/firing/resolved
  state machine per severity;
* the alerting event feed — ``slo_burn``/``alert`` rows from
  ``sys.events``.

Everything goes through plain JustQL against the ``sys.*`` virtual
tables: what the demo plots, an operator can query.  Seeded; two runs
print identical frames.  ``--once`` renders a single end-of-run frame
(the CI smoke mode).
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.cli import format_result
from repro.cluster.simclock import CostModel
from repro.core.engine import JustEngine
from repro.core.schema import Field, FieldType, Schema
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, SlowServer
from repro.observability.monitor import default_objectives
from repro.service.client import JustClient
from repro.service.server import JustServer

#: Spatial extent the demo points are drawn from.
_AREA = (116.0, 39.8, 116.5, 40.1)
_T0 = 1_500_000_000.0

DEMO_USER = "ops"

#: Small fixed costs so injected gray latency dominates statement time.
DASH_COST_MODEL = CostModel(query_overhead_ms=1.0, seek_ms=0.2,
                            spark_stage_ms=1.0)

#: Latency-SLO threshold; a bound of ``DEFAULT_LATENCY_BUCKETS_MS``.
LATENCY_THRESHOLD_MS = 100.0

_SCHEMA = Schema([
    Field("fid", FieldType.INTEGER, primary_key=True),
    Field("time", FieldType.DATE),
    Field("geom", FieldType.POINT),
])

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 48) -> str:
    """Render the tail of a series as a unicode sparkline."""
    tail = [v for v in values if v is not None][-width:]
    if not tail:
        return "(no data)"
    lo, hi = min(tail), max(tail)
    span = (hi - lo) or 1.0
    chars = "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int((v - lo) / span * len(_SPARK)))]
        for v in tail)
    return f"{chars}  [{lo:.1f} .. {hi:.1f}]"


def build_dash_service(rows: int = 600, seed: int = 7,
                       num_servers: int = 4,
                       interval_ms: float = 50.0,
                       slo_base_ms: float = 240_000.0,
                       monitored: bool = True) -> JustServer:
    """A monitored JustServer whose table spans every region server.

    The monitor scrapes every ``interval_ms`` sim-ms and evaluates the
    default availability + latency SLOs with burn windows scaled to
    ``slo_base_ms`` (the demo's "one hour"), so a gray fault a few
    hundred sim-ms long is enough to page.  ``monitored=False`` builds
    the identical service without the pipeline (the benchmark's
    overhead control).
    """
    engine = JustEngine(num_servers=num_servers,
                        cost_model=DASH_COST_MODEL,
                        split_bytes=4 * 1024, flush_bytes=1024)
    if monitored:
        engine.enable_monitoring(
            interval_ms=interval_ms,
            objectives=default_objectives(
                latency_threshold_ms=LATENCY_THRESHOLD_MS,
                slo_base_ms=slo_base_ms))
    table_name = f"{DEMO_USER}__traffic"
    engine.create_table(table_name, _SCHEMA)
    rng = random.Random(seed)
    lo_lng, lo_lat, hi_lng, hi_lat = _AREA
    from repro.geometry.point import Point
    batch = []
    for fid in range(rows):
        batch.append({
            "fid": fid,
            "time": _T0 + rng.random() * 86_400,
            "geom": Point(lo_lng + rng.random() * (hi_lng - lo_lng),
                          lo_lat + rng.random() * (hi_lat - lo_lat))})
    engine.insert(table_name, batch)
    return JustServer(engine)


def inject_slow_server(server: JustServer, victim: int = 0,
                       latency_ms: float = 40.0,
                       seed: int = 7) -> None:
    """Attach the gray fault: every op on ``victim`` pays extra latency."""
    plan = FaultPlan([SlowServer(victim, latency_ms,
                                 jitter_ms=latency_ms / 2)], seed=seed)
    FaultInjector(plan).attach(server.engine.store)


def workload_queries(seed: int, count: int = 8) -> list[str]:
    """Seeded window queries spread over the whole area (all servers)."""
    rng = random.Random(seed ^ 0xDA5)
    lo_lng, lo_lat, hi_lng, hi_lat = _AREA
    side = 0.15
    queries = []
    for _ in range(count):
        lng = lo_lng + rng.random() * (hi_lng - lo_lng - side)
        lat = lo_lat + rng.random() * (hi_lat - lo_lat - side)
        queries.append(
            f"SELECT fid FROM traffic WHERE geom WITHIN "
            f"st_makeMBR({lng:.4f}, {lat:.4f}, {lng + side:.4f}, "
            f"{lat + side:.4f})")
    return queries


def _series_values(client: JustClient, name: str,
                   column: str = "value") -> list[float]:
    result = client.execute_query(
        f"SELECT ts_ms, value, rate_per_s FROM sys.metrics_history "
        f"WHERE name = '{name}' AND tier = 0 ORDER BY ts_ms")
    return [row[column] for row in result.rows]


#: (label, history series, column) triples the dashboard plots.
_PANELS = (
    ("stmt rate (ok/s)", "server.statements{status=ok}", "rate_per_s"),
    ("stmt p95 sim-ms", "server.statement_sim_ms_p95", "value"),
    ("scrapes", "monitor.scrapes", "value"),
)


def _render_frame(client: JustClient, label: str, out) -> None:
    print(f"\n== {label}: sparklines (sys.metrics_history) ==",
          file=out)
    for title, series, column in _PANELS:
        line = sparkline(_series_values(client, series, column))
        print(f"{title:>18} {line}", file=out)

    print("\n== SLO scoreboard (sys.slos) ==", file=out)
    result = client.execute_query(
        "SELECT slo, kind, target, state, budget_remaining, "
        "burn_short, burn_long FROM sys.slos")
    print(format_result(result), file=out)

    print("\n== alerts (sys.alerts) ==", file=out)
    result = client.execute_query(
        "SELECT slo, severity, state, burn_short, burn_long, factor, "
        "times_fired FROM sys.alerts")
    print(format_result(result), file=out)


def _render_alert_feed(client: JustClient, out) -> None:
    print("\n== alerting event feed (sys.events) ==", file=out)
    result = client.execute_query(
        "SELECT seq, sim_ms, kind, detail "
        "FROM sys.events WHERE kind = 'alert' OR kind = 'slo_burn' "
        "ORDER BY seq LIMIT 12")
    print(format_result(result), file=out)


def _alert_fired(server: JustServer) -> bool:
    return any(a["state"] == "firing"
               for a in server.engine.monitor.alert_rows())


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro dash",
        description="Sparkline dashboard + SLO burn-rate alerting over "
                    "the sys.* monitoring tables.")
    parser.add_argument("--rows", type=int, default=600,
                        help="points to load (default 600)")
    parser.add_argument("--passes", type=int, default=3,
                        help="healthy workload passes (default 3)")
    parser.add_argument("--fault-passes", type=int, default=12,
                        help="max workload passes under the gray fault")
    parser.add_argument("--latency-ms", type=float, default=40.0,
                        help="injected per-op latency on the victim")
    parser.add_argument("--once", action="store_true",
                        help="render a single end-of-run frame "
                             "(CI smoke mode)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    server = build_dash_service(rows=args.rows, seed=args.seed)
    client = JustClient(server, DEMO_USER)
    queries = workload_queries(args.seed)

    print(f"== monitored service: {args.rows} points, "
          f"latency SLO < {LATENCY_THRESHOLD_MS:g} sim-ms ==", file=out)
    for pass_no in range(1, args.passes + 1):
        for sql in queries:
            client.execute_query(sql)
        if not args.once:
            _render_frame(client, f"healthy pass {pass_no}", out)

    print(f"\n== injecting SlowServer(+{args.latency_ms:g} ms) on "
          f"server 0 ==", file=out)
    inject_slow_server(server, latency_ms=args.latency_ms,
                       seed=args.seed)
    fired_pass = None
    for pass_no in range(1, args.fault_passes + 1):
        for sql in queries:
            client.execute_query(sql)
        if not args.once:
            _render_frame(client, f"faulted pass {pass_no}", out)
        if _alert_fired(server):
            fired_pass = pass_no
            break

    if args.once:
        _render_frame(client, "final", out)
    _render_alert_feed(client, out)

    snap = server.engine.monitor.snapshot()
    print(f"\n== monitor: {snap['scrapes']} scrapes, "
          f"{snap['series']} series, "
          f"{snap['alerts_firing']} alert(s) firing ==", file=out)
    if fired_pass is not None:
        print(f"page fired during faulted pass {fired_pass} — "
              f"the burn-rate pipeline caught the gray failure.",
              file=out)
    else:
        print("no page fired within the fault budget — rerun with "
              "--latency-ms higher or more --fault-passes.", file=out)

    client.close()
    if args.once and fired_pass is None:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
