"""The fault-injection harness wired into the key-value store.

The store calls :meth:`FaultInjector.on_op` at the top of every table
operation; the injector advances its deterministic schedule and crashes
servers through :meth:`KVStore.crash_server` when a fault fires.  Two
runs with the same plan (same seed) inject the exact same faults at the
exact same operations.

Gray failures hook in one level lower: the store calls
:meth:`FaultInjector.on_region_op` each time an operation touches a
region, and active :class:`~repro.faults.plan.SlowServer` /
:class:`~repro.faults.plan.IntermittentError` faults on that region's
server charge seeded latency to the request context or raise seeded
intermittent :class:`~repro.errors.RegionUnavailableError`\\ s.
"""

from __future__ import annotations

import random

from repro.errors import RegionUnavailableError
from repro.faults.plan import (
    GRAY_FAULTS,
    SHIP_FAULTS,
    FaultPlan,
    IntermittentError,
    KillServer,
    PartitionedFollower,
    SlowServer,
)


class FaultInjector:
    """Executes one :class:`FaultPlan` against one store."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.op_count = 0
        self.fired: list[KillServer] = []
        self._pending: list[KillServer] = [
            f for f in plan.faults if isinstance(f, KillServer)]
        self.gray_faults = tuple(
            f for f in plan.faults if isinstance(f, GRAY_FAULTS))
        self.ship_faults = tuple(
            f for f in plan.faults if isinstance(f, SHIP_FAULTS))
        self._rng = random.Random(plan.seed)
        # Gray-fault and ship-fault bookkeeping: separate seeded streams
        # keep kill schedules reproducible whether or not the other
        # fault families also fire.
        self._gray_rng = random.Random((plan.seed << 1) ^ 0x5EED)
        self._ship_rng = random.Random((plan.seed << 2) ^ 0xB10C)
        self.region_op_count = 0
        self.ship_count = 0
        self.slow_ms_injected = 0.0
        self.errors_injected = 0
        self.ships_blocked = 0
        self.ships_dropped = 0

    def attach(self, store) -> "FaultInjector":
        """Install this injector on ``store`` and return it."""
        store.fault_injector = self
        return self

    def on_op(self, store, op: str) -> None:
        if op not in self.plan.ops or not self._pending:
            return
        self.op_count += 1
        fired_now = []
        for fault in self._pending:
            if fault.server in store.dead_servers:
                fired_now.append(fault)  # target already dead: drop it
                continue
            if self._triggers(fault):
                store.crash_server(
                    fault.server,
                    lost_tail_records=fault.lost_tail_records,
                    defer_failover=fault.defer_failover)
                fired_now.append(fault)
                self.fired.append(fault)
        for fault in fired_now:
            self._pending.remove(fault)

    def _triggers(self, fault: KillServer) -> bool:
        if fault.after_ops is not None:
            return self.op_count >= fault.after_ops
        return self._rng.random() < fault.probability

    # -- gray failures -------------------------------------------------------
    def evaluate(self, server: int, op: str) -> tuple[float, bool]:
        """What one ``op`` on ``server`` costs under active gray faults.

        Returns ``(latency_ms, fails)`` and advances the gray-fault
        schedule exactly like :meth:`on_region_op` — the hedged-read
        arbiter uses this to compare the primary and follower paths
        before charging only the winner.
        """
        if not self.gray_faults:
            return 0.0, False
        self.region_op_count += 1
        latency = 0.0
        fails = False
        for fault in self.gray_faults:
            if fault.server != server or op not in fault.ops:
                continue
            if not self._gray_active(fault):
                continue
            if isinstance(fault, SlowServer):
                added = fault.latency_ms
                if fault.jitter_ms:
                    added += self._gray_rng.random() * fault.jitter_ms
                latency += added
            elif isinstance(fault, IntermittentError):
                if self._gray_rng.random() < fault.probability:
                    fails = True
        return latency, fails

    def on_region_op(self, store, table: str, region, op: str,
                     ctx=None) -> None:
        """One operation touched ``region``; apply active gray faults.

        Slow-server latency is charged to ``ctx`` (deadline + job) when
        a request context is present; intermittent errors raise
        regardless, since a flapping server fails legacy callers too.
        """
        latency, fails = self.evaluate(region.server, op)
        if latency:
            self.slow_ms_injected += latency
            if ctx is not None:
                ctx.charge(latency, label="gray_latency")
        if fails:
            self.errors_injected += 1
            raise RegionUnavailableError(
                table, region.region_id, region.server,
                reason=f"intermittent fault on region server "
                       f"{region.server}")

    def _gray_active(self, fault) -> bool:
        count = self.region_op_count
        if count <= fault.after_ops:
            return False
        if fault.duration_ops is not None and \
                count > fault.after_ops + fault.duration_ops:
            return False
        return True

    # -- replication-link faults ---------------------------------------------
    def on_ship(self, server: int) -> str:
        """Verdict for shipping one WAL record to a replica on ``server``.

        ``"ok"`` — delivered; ``"blocked"`` — a partition stops the
        ship before it leaves (the sender keeps the record queued);
        ``"drop"`` — lost in flight (seeded, per record).
        """
        if not self.ship_faults:
            return "ok"
        self.ship_count += 1
        for fault in self.ship_faults:
            if fault.server != server:
                continue
            if not self._ship_active(fault):
                continue
            if isinstance(fault, PartitionedFollower):
                self.ships_blocked += 1
                return "blocked"
            if self._ship_rng.random() < fault.probability:
                self.ships_dropped += 1
                return "drop"
        return "ok"

    def _ship_active(self, fault) -> bool:
        count = self.ship_count
        if count <= fault.after_ships:
            return False
        if fault.duration_ships is not None and \
                count > fault.after_ships + fault.duration_ships:
            return False
        return True
