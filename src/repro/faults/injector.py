"""The fault-injection harness wired into the key-value store.

The store calls :meth:`FaultInjector.on_op` at the top of every table
operation; the injector advances its deterministic schedule and crashes
servers through :meth:`KVStore.crash_server` when a fault fires.  Two
runs with the same plan (same seed) inject the exact same faults at the
exact same operations.

Gray failures hook in one level lower: the store calls
:meth:`FaultInjector.on_region_op` each time an operation touches a
region, and active :class:`~repro.faults.plan.SlowServer` /
:class:`~repro.faults.plan.IntermittentError` faults on that region's
server charge seeded latency to the request context or raise seeded
intermittent :class:`~repro.errors.RegionUnavailableError`\\ s.
"""

from __future__ import annotations

import random

from repro.errors import RegionUnavailableError
from repro.faults.plan import (
    FaultPlan,
    IntermittentError,
    KillServer,
    SlowServer,
)


class FaultInjector:
    """Executes one :class:`FaultPlan` against one store."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.op_count = 0
        self.fired: list[KillServer] = []
        self._pending: list[KillServer] = [
            f for f in plan.faults if isinstance(f, KillServer)]
        self.gray_faults = tuple(
            f for f in plan.faults if not isinstance(f, KillServer))
        self._rng = random.Random(plan.seed)
        # Gray-fault bookkeeping: a separate seeded stream keeps kill
        # schedules reproducible whether or not gray faults also fire.
        self._gray_rng = random.Random((plan.seed << 1) ^ 0x5EED)
        self.region_op_count = 0
        self.slow_ms_injected = 0.0
        self.errors_injected = 0

    def attach(self, store) -> "FaultInjector":
        """Install this injector on ``store`` and return it."""
        store.fault_injector = self
        return self

    def on_op(self, store, op: str) -> None:
        if op not in self.plan.ops or not self._pending:
            return
        self.op_count += 1
        fired_now = []
        for fault in self._pending:
            if fault.server in store.dead_servers:
                fired_now.append(fault)  # target already dead: drop it
                continue
            if self._triggers(fault):
                store.crash_server(
                    fault.server,
                    lost_tail_records=fault.lost_tail_records,
                    defer_failover=fault.defer_failover)
                fired_now.append(fault)
                self.fired.append(fault)
        for fault in fired_now:
            self._pending.remove(fault)

    def _triggers(self, fault: KillServer) -> bool:
        if fault.after_ops is not None:
            return self.op_count >= fault.after_ops
        return self._rng.random() < fault.probability

    # -- gray failures -------------------------------------------------------
    def on_region_op(self, store, table: str, region, op: str,
                     ctx=None) -> None:
        """One operation touched ``region``; apply active gray faults.

        Slow-server latency is charged to ``ctx`` (deadline + job) when
        a request context is present; intermittent errors raise
        regardless, since a flapping server fails legacy callers too.
        """
        if not self.gray_faults:
            return
        self.region_op_count += 1
        for fault in self.gray_faults:
            if fault.server != region.server or op not in fault.ops:
                continue
            if not self._gray_active(fault):
                continue
            if isinstance(fault, SlowServer):
                latency = fault.latency_ms
                if fault.jitter_ms:
                    latency += self._gray_rng.random() * fault.jitter_ms
                self.slow_ms_injected += latency
                if ctx is not None:
                    ctx.charge(latency, label="gray_latency")
            elif isinstance(fault, IntermittentError):
                if self._gray_rng.random() < fault.probability:
                    self.errors_injected += 1
                    raise RegionUnavailableError(
                        table, region.region_id, region.server,
                        reason=f"intermittent fault on region server "
                               f"{region.server}")

    def _gray_active(self, fault) -> bool:
        count = self.region_op_count
        if count <= fault.after_ops:
            return False
        if fault.duration_ops is not None and \
                count > fault.after_ops + fault.duration_ops:
            return False
        return True
