"""The fault-injection harness wired into the key-value store.

The store calls :meth:`FaultInjector.on_op` at the top of every table
operation; the injector advances its deterministic schedule and crashes
servers through :meth:`KVStore.crash_server` when a fault fires.  Two
runs with the same plan (same seed) inject the exact same faults at the
exact same operations.
"""

from __future__ import annotations

import random

from repro.faults.plan import FaultPlan, KillServer


class FaultInjector:
    """Executes one :class:`FaultPlan` against one store."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.op_count = 0
        self.fired: list[KillServer] = []
        self._pending: list[KillServer] = list(plan.faults)
        self._rng = random.Random(plan.seed)

    def attach(self, store) -> "FaultInjector":
        """Install this injector on ``store`` and return it."""
        store.fault_injector = self
        return self

    def on_op(self, store, op: str) -> None:
        if op not in self.plan.ops or not self._pending:
            return
        self.op_count += 1
        fired_now = []
        for fault in self._pending:
            if fault.server in store.dead_servers:
                fired_now.append(fault)  # target already dead: drop it
                continue
            if self._triggers(fault):
                store.crash_server(
                    fault.server,
                    lost_tail_records=fault.lost_tail_records,
                    defer_failover=fault.defer_failover)
                fired_now.append(fault)
                self.fired.append(fault)
        for fault in fired_now:
            self._pending.remove(fault)

    def _triggers(self, fault: KillServer) -> bool:
        if fault.after_ops is not None:
            return self.op_count >= fault.after_ops
        return self._rng.random() < fault.probability
