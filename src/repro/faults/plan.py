"""Declarative, deterministic fault plans.

A :class:`FaultPlan` describes *what* goes wrong and *when*, decoupled
from the store executing it: kill region server N after the K-th
operation, or with probability p per operation under a fixed seed.  Log
corruption modes model the two classic ways a write-ahead log lies
after a crash: a torn tail (the final record was mid-write) and delayed
writes (the disk cache acknowledged records that never hit the platter).

Beyond fail-stop crashes, a plan can schedule *gray failures* — the
server is up but misbehaving, the production failure mode crash tests
miss: :class:`SlowServer` adds seeded per-operation latency on the
simulated clock (a saturated disk, a GC-pausing JVM), and
:class:`IntermittentError` makes a server's regions fail a seeded
fraction of operations (a flapping network, a half-dead disk).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class CorruptionMode(Enum):
    """How the dead server's WAL is damaged beyond the unsynced tail."""

    NONE = "none"
    #: The final record was being written when the server died; recovery
    #: sees a CRC mismatch and treats it as end-of-log.
    TORN_TAIL = "torn_tail"
    #: The disk cache acknowledged the last few syncs without persisting
    #: them, so several "durable" records are missing.
    DELAYED_WRITE = "delayed_write"


@dataclass(frozen=True, slots=True)
class KillServer:
    """Kill one region server, either at a fixed op count or randomly.

    Exactly one of ``after_ops`` (deterministic trigger on the K-th
    store operation) and ``probability`` (per-operation coin flip using
    the plan's seed) must be set.
    """

    server: int
    after_ops: int | None = None
    probability: float | None = None
    corruption: CorruptionMode = CorruptionMode.NONE
    #: Records dropped off the synced log tail under DELAYED_WRITE.
    delayed_records: int = 4
    #: Leave the regions unavailable until an explicit failover call
    #: (clients see RegionUnavailableError in the window).
    defer_failover: bool = False

    def __post_init__(self):
        if (self.after_ops is None) == (self.probability is None):
            raise ValueError(
                "KillServer needs exactly one of after_ops/probability")
        if self.after_ops is not None and self.after_ops < 1:
            raise ValueError("after_ops must be >= 1")
        if self.probability is not None and \
                not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")

    @property
    def lost_tail_records(self) -> int:
        if self.corruption is CorruptionMode.TORN_TAIL:
            return 1
        if self.corruption is CorruptionMode.DELAYED_WRITE:
            return self.delayed_records
        return 0


#: Region-level operations gray faults can target by default.
GRAY_OPS = ("get", "put", "scan")


@dataclass(frozen=True, slots=True)
class SlowServer:
    """Gray failure: every operation on one server pays extra latency.

    The latency is simulated-clock milliseconds charged to the active
    request's deadline/job (``latency_ms`` plus a seeded uniform draw
    from ``[0, jitter_ms)``), so a slow server inflates statement tail
    latency exactly the way a saturated region server would.  The fault
    activates after ``after_ops`` region operations and, when
    ``duration_ops`` is set, heals after that many more.
    """

    server: int
    latency_ms: float
    jitter_ms: float = 0.0
    after_ops: int = 0
    duration_ops: int | None = None
    ops: tuple[str, ...] = GRAY_OPS

    def __post_init__(self):
        if self.latency_ms < 0 or self.jitter_ms < 0:
            raise ValueError("latency_ms and jitter_ms must be >= 0")
        if self.after_ops < 0:
            raise ValueError("after_ops must be >= 0")
        if self.duration_ops is not None and self.duration_ops < 1:
            raise ValueError("duration_ops must be >= 1")


@dataclass(frozen=True, slots=True)
class IntermittentError:
    """Gray failure: a server's regions fail a fraction of operations.

    Each targeted operation independently raises
    :class:`~repro.errors.RegionUnavailableError` with ``probability``
    (seeded, deterministic for a fixed op sequence) — a flapping server
    that clients must retry around, back off from, and eventually
    circuit-break on.  Activation window as in :class:`SlowServer`.
    """

    server: int
    probability: float
    after_ops: int = 0
    duration_ops: int | None = None
    ops: tuple[str, ...] = GRAY_OPS

    def __post_init__(self):
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.after_ops < 0:
            raise ValueError("after_ops must be >= 0")
        if self.duration_ops is not None and self.duration_ops < 1:
            raise ValueError("duration_ops must be >= 1")


#: Gray-failure fault types (server stays up; behaviour degrades).
GRAY_FAULTS = (SlowServer, IntermittentError)


@dataclass(frozen=True, slots=True)
class PartitionedFollower:
    """WAL shipping to ``server`` is blocked (a network partition).

    Replication traffic *to* the server fails while the server itself
    stays healthy: a sender keeps the records queued (per-replica lag
    grows) and re-ships them once the partition heals.  Activates after
    ``after_ships`` shipped records; with ``duration_ships`` set it
    heals after that many more ship attempts.
    """

    server: int
    after_ships: int = 0
    duration_ships: int | None = None

    def __post_init__(self):
        if self.after_ships < 0:
            raise ValueError("after_ships must be >= 0")
        if self.duration_ships is not None and self.duration_ships < 1:
            raise ValueError("duration_ships must be >= 1")


@dataclass(frozen=True, slots=True)
class LossyShipping:
    """Each WAL record shipped to ``server`` is dropped with
    ``probability`` (seeded).

    A drop during lazy shipping leaves a gap in the follower's stream
    (the sender has moved on), tearing the replica until anti-entropy
    rebuilds it; a drop during a synchronous quorum ship is just a
    failed ack — the sender still holds the record and retries.
    Activation window as in :class:`PartitionedFollower`.
    """

    server: int
    probability: float
    after_ships: int = 0
    duration_ships: int | None = None

    def __post_init__(self):
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.after_ships < 0:
            raise ValueError("after_ships must be >= 0")
        if self.duration_ships is not None and self.duration_ships < 1:
            raise ValueError("duration_ships must be >= 1")


#: Replication-link fault types (affect WAL shipping, not the server).
SHIP_FAULTS = (PartitionedFollower, LossyShipping)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seeded schedule of faults for one store's lifetime.

    ``faults`` may mix fail-stop :class:`KillServer` entries with gray
    :class:`SlowServer` / :class:`IntermittentError` entries and
    replication-link :class:`PartitionedFollower` /
    :class:`LossyShipping` entries.
    """

    faults: tuple = ()
    seed: int = 0
    #: Which store operations advance the op counter and can trigger
    #: probabilistic faults ("put" covers deletes too).
    ops: tuple[str, ...] = ("put",)

    def __init__(self, faults=(), seed: int = 0, ops=("put",)):
        object.__setattr__(self, "faults", tuple(faults))
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "ops", tuple(ops))

    @classmethod
    def kill_after(cls, server: int, ops: int, **kwargs) -> "FaultPlan":
        """Shorthand: kill ``server`` right after the ``ops``-th write."""
        return cls([KillServer(server, after_ops=ops, **kwargs)])

    @classmethod
    def slow_server(cls, server: int, latency_ms: float,
                    seed: int = 0, **kwargs) -> "FaultPlan":
        """Shorthand: one persistently slow region server."""
        return cls([SlowServer(server, latency_ms, **kwargs)], seed=seed)

    @classmethod
    def flaky_server(cls, server: int, probability: float,
                     seed: int = 0, **kwargs) -> "FaultPlan":
        """Shorthand: one server failing a fraction of operations."""
        return cls([IntermittentError(server, probability, **kwargs)],
                   seed=seed)
