"""``python -m repro resilience`` — gray-failure resilience demonstration.

Stands up the full service stack (engine -> JustServer -> JustClient)
over a multi-region table, makes one region server *sick* — slow
(:class:`~repro.faults.plan.SlowServer`) or flapping
(:class:`~repro.faults.plan.IntermittentError`) — and drives a seeded
query workload through the SDK under three client policies:

* ``baseline``  — no deadline, no partial results: requests absorb the
  full injected latency and see raw intermittent errors (minus SDK
  retries).
* ``deadline``  — a per-statement ``timeout_ms`` budget on the simulated
  clock: stuck statements cancel cooperatively, capping tail latency at
  the cost of timed-out requests.
* ``partial``   — deadline + opt-in partial results: scans skip
  unavailable regions, return live rows, and report what was skipped.

Everything (latency draws, error draws, query windows, backoff jitter)
is seeded, so two runs print identical tables.
"""

from __future__ import annotations

import argparse
import random
import sys
from dataclasses import dataclass, field

from repro.cluster.simclock import CostModel
from repro.core.engine import JustEngine
from repro.core.schema import Field, FieldType, Schema
from repro.errors import JustError, QueryTimeoutError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, IntermittentError, SlowServer
from repro.resilience import CircuitBreaker
from repro.service.client import JustClient
from repro.service.server import JustServer

#: Cost model for service-level experiments: the shared-context driver
#: overhead is shrunk so a ~100 ms deadline budget is meaningful against
#: injected per-operation latency rather than swamped by fixed costs.
SERVICE_COST_MODEL = CostModel(query_overhead_ms=1.0, seek_ms=0.2,
                               spark_stage_ms=1.0)

_SCHEMA = Schema([
    Field("fid", FieldType.INTEGER, primary_key=True),
    Field("time", FieldType.DATE),
    Field("geom", FieldType.POINT),
])

#: Beijing-ish box the demo data and query windows are drawn from.
_AREA = (116.0, 39.8, 116.5, 40.1)

#: All workload clients connect as this user, so the demo table lives in
#: its namespace (the server prefixes every statement's table names).
WORKLOAD_USER = "bench"


@dataclass
class WorkloadResult:
    """Outcome of one policy's run over the seeded workload."""

    mode: str
    queries: int = 0
    ok: int = 0
    timeouts: int = 0
    errors: int = 0
    fast_failures: int = 0
    partial: int = 0
    regions_skipped: int = 0
    retries: int = 0
    latencies_ms: list = field(default_factory=list)

    @property
    def goodput(self) -> float:
        """Fraction of requests that returned rows (full or partial)."""
        return self.ok / self.queries if self.queries else 0.0

    def percentile(self, q: float) -> float:
        """Latency percentile over all finished requests, sim-ms."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


def build_service(fault: str = "slow", num_rows: int = 400,
                  latency_ms: float = 30.0, probability: float = 0.3,
                  victim: int = 0, seed: int = 0,
                  num_servers: int = 5) -> JustServer:
    """A JustServer whose table spans many regions, one server sick.

    ``fault`` is ``"slow"``, ``"flaky"``, or ``"none"`` (control run).
    Small split/flush thresholds force the table across regions on every
    server, so the victim's sickness hits a slice of every scan.
    """
    engine = JustEngine(num_servers=num_servers,
                        cost_model=SERVICE_COST_MODEL,
                        split_bytes=4 * 1024, flush_bytes=1024)
    table_name = f"{WORKLOAD_USER}__events"
    engine.create_table(table_name, _SCHEMA)
    rng = random.Random(seed)
    lo_lng, lo_lat, hi_lng, hi_lat = _AREA
    rows = []
    for fid in range(num_rows):
        from repro.geometry.point import Point
        rows.append({"fid": fid,
                     "time": 1_500_000_000.0 + rng.random() * 86400,
                     "geom": Point(lo_lng + rng.random()
                                   * (hi_lng - lo_lng),
                                   lo_lat + rng.random()
                                   * (hi_lat - lo_lat))})
    engine.insert(table_name, rows)

    if fault == "slow":
        plan = FaultPlan([SlowServer(victim, latency_ms,
                                     jitter_ms=latency_ms / 2)],
                         seed=seed)
        FaultInjector(plan).attach(engine.store)
    elif fault == "flaky":
        plan = FaultPlan([IntermittentError(victim, probability)],
                         seed=seed)
        FaultInjector(plan).attach(engine.store)
    elif fault != "none":
        raise ValueError(f"unknown fault kind {fault!r}")
    return JustServer(engine)


def query_windows(count: int, seed: int = 0,
                  side: float = 0.12) -> list[tuple]:
    """Seeded spatial windows covering a healthy chunk of the area."""
    rng = random.Random(seed ^ 0xD15EA5E)
    lo_lng, lo_lat, hi_lng, hi_lat = _AREA
    out = []
    for _ in range(count):
        lng = lo_lng + rng.random() * (hi_lng - lo_lng - side)
        lat = lo_lat + rng.random() * (hi_lat - lo_lat - side)
        out.append((lng, lat, lng + side, lat + side))
    return out


def run_workload(server: JustServer, mode: str, queries: int = 50,
                 timeout_ms: float = 100.0,
                 seed: int = 0) -> WorkloadResult:
    """Drive the seeded query workload through one client policy.

    ``mode`` is ``baseline``/``deadline``/``partial``.  The client's
    sleep is a no-op (backoff is accounted, not waited) and the breaker
    runs on a simulated second hand advanced per request, keeping the
    run deterministic and instant in wall-clock terms.
    """
    now = [0.0]
    client = JustClient(server, WORKLOAD_USER, jitter_seed=seed,
                        sleep=lambda _s: None,
                        breaker=CircuitBreaker(reset_timeout_s=5.0,
                                               clock=lambda: now[0]))
    result = WorkloadResult(mode=mode)
    kwargs = {}
    if mode in ("deadline", "partial"):
        kwargs["timeout_ms"] = timeout_ms
    if mode == "partial":
        kwargs["partial_results"] = True

    for window in query_windows(queries, seed=seed):
        now[0] += 1.0  # one simulated second between requests
        result.queries += 1
        statement = ("SELECT fid FROM events WHERE geom WITHIN "
                     "st_makeMBR({:.4f}, {:.4f}, {:.4f}, {:.4f})"
                     .format(*window))
        try:
            rs = client.execute_query(statement, **kwargs)
        except QueryTimeoutError as exc:
            result.timeouts += 1
            result.latencies_ms.append(exc.consumed_ms)
        except JustError:
            result.errors += 1
            result.latencies_ms.append(timeout_ms
                                       if mode != "baseline" else 0.0)
        else:
            result.ok += 1
            result.latencies_ms.append(rs.sim_ms)
            if rs.skipped_regions:
                result.partial += 1
                result.regions_skipped += len(rs.skipped_regions)
    result.retries = client.retries_attempted
    result.fast_failures = client.breaker.fast_failures
    return result


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro resilience",
        description="Drive a seeded query workload against a sick "
                    "region server under three client policies.")
    parser.add_argument("--fault", choices=["slow", "flaky", "none"],
                        default="slow")
    parser.add_argument("--queries", type=int, default=50)
    parser.add_argument("--latency-ms", type=float, default=30.0,
                        help="injected per-op latency (slow fault)")
    parser.add_argument("--probability", type=float, default=0.3,
                        help="per-op error probability (flaky fault)")
    parser.add_argument("--timeout-ms", type=float, default=100.0,
                        help="statement deadline for the resilient modes")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    header = (f"{'mode':>10} | {'ok':>4} | {'t/o':>4} | {'err':>4} | "
              f"{'part':>4} | {'p50 ms':>8} | {'p95 ms':>8} | "
              f"{'p99 ms':>8} | {'goodput':>7}")
    print(f"fault={args.fault} over {args.queries} queries "
          f"(timeout {args.timeout_ms:.0f} ms)", file=out)
    print(header, file=out)
    print("-" * len(header), file=out)
    for mode in ("baseline", "deadline", "partial"):
        server = build_service(args.fault, latency_ms=args.latency_ms,
                               probability=args.probability,
                               seed=args.seed)
        result = run_workload(server, mode, queries=args.queries,
                              timeout_ms=args.timeout_ms,
                              seed=args.seed)
        print(f"{mode:>10} | {result.ok:>4} | {result.timeouts:>4} | "
              f"{result.errors:>4} | {result.partial:>4} | "
              f"{result.percentile(0.50):>8.1f} | "
              f"{result.percentile(0.95):>8.1f} | "
              f"{result.percentile(0.99):>8.1f} | "
              f"{result.goodput:>7.2f}", file=out)
    print("(deadlines cap the tail; partial results trade completeness "
          "for goodput on a flapping server)", file=out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
