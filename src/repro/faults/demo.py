"""``python -m repro faults`` — crash/recovery demonstration.

Ingests a seeded key stream into a WAL-backed store, kills a region
server mid-ingest through the fault-injection harness, fails its
regions over to the survivors, and reports — per sync policy — how many
acknowledged writes were lost, how many bytes the WAL replay touched,
and the simulated recovery time.
"""

from __future__ import annotations

import argparse
import random
import sys
from dataclasses import dataclass

from repro.cluster.simclock import CostModel, SimJob
from repro.faults.injector import FaultInjector
from repro.faults.plan import CorruptionMode, FaultPlan, KillServer
from repro.kvstore import KVStore, SyncPolicy
from repro.kvstore.recovery import RecoveryReport


@dataclass
class CrashResult:
    """Outcome of one ingest-crash-recover run."""

    policy: SyncPolicy
    acked_writes: int
    lost_acked_writes: int
    ingest_ms: float
    wal_syncs: int
    wal_bytes: int
    recovery: RecoveryReport


def run_crash_experiment(policy: SyncPolicy,
                         num_keys: int = 3000,
                         kill_after: int = 2000,
                         victim: int = 0,
                         num_servers: int = 5,
                         value_bytes: int = 64,
                         seed: int = 0,
                         corruption: CorruptionMode = CorruptionMode.NONE,
                         cost_model: CostModel | None = None) -> CrashResult:
    """Ingest, crash a server mid-stream, fail over, measure the damage.

    Every ``put`` that returns normally counts as acknowledged; after
    failover each acknowledged key is read back and counted lost if its
    value is gone.  Deterministic for a fixed seed and plan.
    """
    model = cost_model if cost_model is not None else CostModel()
    store = KVStore(num_servers=num_servers, wal_policy=policy,
                    flush_bytes=16 * 1024, split_bytes=64 * 1024,
                    block_bytes=1024, cost_model=model,
                    # Group-commit threshold scaled to the demo's write
                    # volume so PERIODIC sits between SYNC and ASYNC.
                    wal_periodic_bytes=2 * 1024)
    plan = FaultPlan([KillServer(victim, after_ops=kill_after,
                                 corruption=corruption)], seed=seed)
    FaultInjector(plan).attach(store)
    table = store.create_table("ingest")

    rng = random.Random(seed)
    acked: list[tuple[bytes, bytes]] = []
    before = store.stats.snapshot()
    for _ in range(num_keys):
        # Random keys spread load across every region (and so every
        # server), keeping the victim's memstores busy at crash time.
        key = f"k{rng.getrandbits(60):016x}".encode()
        value = rng.randbytes(value_bytes)
        table.put(key, value)
        acked.append((key, value))
    delta = store.stats.snapshot().delta(before)

    job = SimJob(model, num_servers)
    job.charge_wal(delta)
    job.charge_disk_write(delta.disk_bytes_written)
    job.charge_cpu_records(len(acked), us_per_record=model.kv_put_us,
                           parallel=False)

    lost = sum(1 for key, value in acked if table.get(key) != value)
    report = store.last_recovery
    assert report is not None, "the injected crash never fired"
    return CrashResult(policy=policy, acked_writes=len(acked),
                       lost_acked_writes=lost, ingest_ms=job.elapsed_ms,
                       wal_syncs=delta.wal_syncs,
                       wal_bytes=delta.wal_bytes_written,
                       recovery=report)


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description="Inject a region-server crash and measure recovery "
                    "under each WAL sync policy.")
    parser.add_argument("--keys", type=int, default=3000,
                        help="keys to ingest (default: 3000)")
    parser.add_argument("--kill-after", type=int, default=2000,
                        help="crash the victim after this many writes")
    parser.add_argument("--victim", type=int, default=0,
                        help="region server to kill (default: 0)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--corruption",
                        choices=[m.value for m in CorruptionMode],
                        default=CorruptionMode.NONE.value,
                        help="WAL damage mode beyond the unsynced tail")
    parser.add_argument("--policy",
                        choices=["all"] + [p.value for p in SyncPolicy],
                        default="all")
    args = parser.parse_args(argv)
    if not 0 < args.kill_after < args.keys:
        parser.error(f"--kill-after must be between 1 and --keys - 1 "
                     f"(got {args.kill_after} with --keys {args.keys})")
    if not 0 <= args.victim < 5:
        parser.error(f"--victim must be a server id in 0..4 "
                     f"(got {args.victim})")

    policies = list(SyncPolicy) if args.policy == "all" \
        else [SyncPolicy(args.policy)]
    corruption = CorruptionMode(args.corruption)

    header = (f"{'policy':>10} | {'acked':>7} | {'lost':>5} | "
              f"{'ingest ms':>10} | {'fsyncs':>7} | "
              f"{'replayed B':>10} | {'recovery ms':>11}")
    print(f"crash after {args.kill_after}/{args.keys} writes on server "
          f"{args.victim} (corruption: {corruption.value})", file=out)
    print(header, file=out)
    print("-" * len(header), file=out)
    for policy in policies:
        result = run_crash_experiment(
            policy, num_keys=args.keys, kill_after=args.kill_after,
            victim=args.victim, seed=args.seed, corruption=corruption)
        report = result.recovery
        print(f"{policy.value:>10} | {result.acked_writes:>7} | "
              f"{result.lost_acked_writes:>5} | "
              f"{result.ingest_ms:>10.1f} | {result.wal_syncs:>7} | "
              f"{report.replayed_bytes:>10} | "
              f"{report.recovery_ms:>11.1f}", file=out)
    print("(SYNC never loses an acknowledged write; ASYNC trades the "
          "unsynced tail for fsync-free ingest)", file=out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
