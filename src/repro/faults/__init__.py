"""Deterministic fault injection for the simulated store.

The paper inherits HBase's fault tolerance — region-server WALs, log
replay, and region reassignment — and this package makes that axis
measurable: seeded :class:`FaultPlan` schedules kill region servers at
exact operation counts (or with seeded probabilities), optionally
corrupting the dead server's log tail, while the store's durability
machinery (:mod:`repro.kvstore.wal`, :mod:`repro.kvstore.recovery`)
picks up the pieces.

Crashes are only half the story: gray failures (:class:`SlowServer`
latency, :class:`IntermittentError` flapping) exercise the request
resilience layer — deadlines, retries, circuit breakers, partial
results — under servers that are sick rather than dead, and
replication-link faults (:class:`PartitionedFollower`,
:class:`LossyShipping`) break WAL shipping between replicas without
touching the servers at either end.
"""

from repro.faults.plan import (
    CorruptionMode,
    FaultPlan,
    IntermittentError,
    KillServer,
    LossyShipping,
    PartitionedFollower,
    SlowServer,
)
from repro.faults.injector import FaultInjector

__all__ = ["CorruptionMode", "FaultPlan", "IntermittentError",
           "KillServer", "SlowServer", "PartitionedFollower",
           "LossyShipping", "FaultInjector"]
