"""User sessions and namespaces."""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass, field

from repro.errors import SessionError

_SESSION_IDS = itertools.count(1)

#: Sessions idle longer than this are expired (and their views dropped).
DEFAULT_SESSION_TIMEOUT_S = 30 * 60.0


@dataclass
class UserSession:
    """One authenticated user session."""

    user: str
    session_id: str
    created_at: float = field(default_factory=_time.monotonic)
    last_active_at: float = field(default_factory=_time.monotonic)

    @property
    def namespace(self) -> str:
        """The invisible prefix isolating this user's tables and views."""
        return f"{self.user}__"

    def touch(self, now: float | None = None) -> None:
        self.last_active_at = now if now is not None else _time.monotonic()

    def idle_seconds(self, now: float | None = None) -> float:
        now = now if now is not None else _time.monotonic()
        return now - self.last_active_at


class SessionManager:
    """Creates, resolves, and expires sessions."""

    def __init__(self, timeout_s: float = DEFAULT_SESSION_TIMEOUT_S):
        self.timeout_s = timeout_s
        self._sessions: dict[str, UserSession] = {}

    def create(self, user: str) -> UserSession:
        if not user or "__" in user:
            raise SessionError(
                f"invalid user name {user!r} (must be non-empty and must "
                f"not contain '__')")
        session = UserSession(user, f"s{next(_SESSION_IDS)}")
        self._sessions[session.session_id] = session
        return session

    def get(self, session_id: str,
            now: float | None = None) -> UserSession:
        try:
            session = self._sessions[session_id]
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None
        if session.idle_seconds(now) > self.timeout_s:
            del self._sessions[session_id]
            raise SessionError(f"session {session_id!r} timed out")
        session.touch(now)
        return session

    def expire_idle(self, now: float | None = None) -> list[UserSession]:
        """Drop idle sessions; returns them so views can be cleaned up."""
        expired = [s for s in self._sessions.values()
                   if s.idle_seconds(now) > self.timeout_s]
        for session in expired:
            del self._sessions[session.session_id]
        return expired

    def active_sessions(self) -> list[UserSession]:
        return list(self._sessions.values())

    def close(self, session_id: str) -> UserSession | None:
        return self._sessions.pop(session_id, None)
