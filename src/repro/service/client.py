"""The SDK client (Java/Python SDK equivalent).

Usage, matching the paper's snippet::

    client = JustClient(server, user="alice")
    rs = client.execute_query(sql)
    while rs.has_next():
        row = rs.next()
        ...

The client owns one server session and re-connects transparently when the
session times out, so long-lived notebooks keep working.
"""

from __future__ import annotations

from repro.errors import SessionError
from repro.service.server import JustServer
from repro.sql.result import ResultSet


class JustClient:
    """A connected SDK client for one user."""

    def __init__(self, server: JustServer, user: str):
        self.server = server
        self.user = user
        self._session_id = server.connect(user)

    @property
    def session_id(self) -> str:
        return self._session_id

    def execute_query(self, statement: str) -> ResultSet:
        """Execute one JustQL statement; reconnects on session timeout."""
        try:
            return self.server.execute(self._session_id, statement)
        except SessionError:
            self._session_id = self.server.connect(self.user)
            return self.server.execute(self._session_id, statement)

    # The paper's SDKs are Java-flavoured; keep the camelCase spelling too.
    executeQuery = execute_query

    def close(self) -> None:
        self.server.disconnect(self._session_id)

    def __enter__(self) -> "JustClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
