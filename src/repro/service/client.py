"""The SDK client (Java/Python SDK equivalent).

Usage, matching the paper's snippet::

    client = JustClient(server, user="alice")
    rs = client.execute_query(sql)
    while rs.has_next():
        row = rs.next()
        ...

The client owns one server session and re-connects transparently when the
session times out, so long-lived notebooks keep working.  Statements that
fail on a transient condition — a region mid-failover
(:class:`RegionUnavailableError`) or the server shedding load
(:class:`ServerOverloadedError`) — are retried with capped, jittered
exponential backoff, like an HBase client waiting out a region
reassignment; a circuit breaker fails fast once the server looks sick so
a flapping cluster is not fed a retry storm.
"""

from __future__ import annotations

import random
import time

from repro.errors import SessionError, is_retryable
from repro.resilience import CircuitBreaker, backoff_ms
from repro.service.server import JustServer
from repro.sql.result import ResultSet


class JustClient:
    """A connected SDK client for one user.

    ``max_retries``/``backoff_base_ms``/``backoff_max_ms`` bound the
    retry loop for transient failures; delays are capped exponential
    with equal jitter from a ``jitter_seed``-seeded stream (pass
    ``jitter_seed=None`` to disable jitter and get the bare capped
    schedule).
    ``sleep`` is injectable so tests (and the simulated clock) don't
    wait on the wall clock, and ``clock`` drives the circuit breaker's
    cooldown so tests control time.
    """

    def __init__(self, server: JustServer, user: str,
                 max_retries: int = 4,
                 backoff_base_ms: float = 10.0,
                 backoff_max_ms: float = 500.0,
                 jitter_seed: int | None = 0,
                 sleep=time.sleep,
                 breaker: CircuitBreaker | None = None,
                 clock=time.monotonic):
        self.server = server
        self.user = user
        self.max_retries = max_retries
        self.backoff_base_ms = backoff_base_ms
        self.backoff_max_ms = backoff_max_ms
        self._rng = None if jitter_seed is None \
            else random.Random(jitter_seed)
        self._sleep = sleep
        self.breaker = breaker if breaker is not None \
            else CircuitBreaker(clock=clock)
        # Breaker trips/fast-failures surface on the server's /metrics
        # endpoint next to the faults that caused them.
        if getattr(server, "metrics", None) is not None:
            self.breaker.bind_metrics(server.metrics)
        if getattr(server, "events", None) is not None:
            self.breaker.bind_events(server.events)
        self.retries_attempted = 0
        self.reconnects = 0
        self._session_id = server.connect(user)

    @property
    def session_id(self) -> str:
        return self._session_id

    def execute_query(self, statement: str,
                      timeout_ms: float | None = None,
                      partial_results: bool = False) -> ResultSet:
        """Execute one JustQL statement.

        One loop handles every failure mode so faults cannot stack
        unboundedly: a session timeout reconnects and retries the same
        attempt budget; transient server faults back off (capped +
        jittered) and retry; anything else propagates.  The circuit
        breaker gates each attempt and fails fast with
        :class:`~repro.errors.CircuitOpenError` while open.

        ``timeout_ms`` asks the server to bound the statement on the
        simulated clock; ``partial_results`` opts in to degraded scans.
        """
        attempt = 0
        gated = False
        while True:
            if not gated:
                self.breaker.before_call()
                gated = True
            try:
                result = self._execute_once(statement, timeout_ms,
                                            partial_results)
            except SessionError:
                # Session expired server-side: reconnect once per
                # attempt slot and go around — no backoff, the new
                # session is immediately usable.  The replay stays under
                # the same breaker gate (a dead session says nothing
                # about backend health), so a half-open probe slot is
                # neither double-spent nor leaked.
                if attempt >= self.max_retries:
                    self.breaker.abandon_probe()
                    raise
                attempt += 1
                self.reconnects += 1
                self._session_id = self.server.connect(self.user)
                continue
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                self.breaker.record_failure()
                gated = False
                if attempt >= self.max_retries:
                    raise
                self.retries_attempted += 1
                delay_ms = backoff_ms(attempt, self.backoff_base_ms,
                                      self.backoff_max_ms, self._rng)
                attempt += 1
                self._sleep(delay_ms / 1000.0)
                continue
            self.breaker.record_success()
            return result

    def _execute_once(self, statement: str,
                      timeout_ms: float | None,
                      partial_results: bool) -> ResultSet:
        # Resilience kwargs are passed only when set, so stub servers
        # (and older deployments) with the plain two-argument signature
        # keep working.
        kwargs = {}
        if timeout_ms is not None:
            kwargs["timeout_ms"] = timeout_ms
        if partial_results:
            kwargs["partial_results"] = True
        return self.server.execute(self._session_id, statement, **kwargs)

    # The paper's SDKs are Java-flavoured; keep the camelCase spelling too.
    executeQuery = execute_query

    def close(self) -> None:
        self.server.disconnect(self._session_id)

    def __enter__(self) -> "JustClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
