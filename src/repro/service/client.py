"""The SDK client (Java/Python SDK equivalent).

Usage, matching the paper's snippet::

    client = JustClient(server, user="alice")
    rs = client.execute_query(sql)
    while rs.has_next():
        row = rs.next()
        ...

The client owns one server session and re-connects transparently when the
session times out, so long-lived notebooks keep working.  Statements that
hit a region mid-failover (:class:`RegionUnavailableError`) are retried
with bounded exponential backoff, like an HBase client waiting out a
region reassignment.
"""

from __future__ import annotations

import time

from repro.errors import RegionUnavailableError, SessionError
from repro.service.server import JustServer
from repro.sql.result import ResultSet


class JustClient:
    """A connected SDK client for one user.

    ``max_retries``/``backoff_base_ms`` bound the retry loop for
    recovering regions; ``sleep`` is injectable so tests (and the
    simulated clock) don't wait on the wall clock.
    """

    def __init__(self, server: JustServer, user: str,
                 max_retries: int = 4,
                 backoff_base_ms: float = 10.0,
                 sleep=time.sleep):
        self.server = server
        self.user = user
        self.max_retries = max_retries
        self.backoff_base_ms = backoff_base_ms
        self._sleep = sleep
        self.retries_attempted = 0
        self._session_id = server.connect(user)

    @property
    def session_id(self) -> str:
        return self._session_id

    def execute_query(self, statement: str) -> ResultSet:
        """Execute one JustQL statement.

        Reconnects on session timeout; backs off and retries while a
        region is offline for crash recovery, re-raising once
        ``max_retries`` attempts are exhausted.
        """
        for attempt in range(self.max_retries + 1):
            try:
                return self._execute_once(statement)
            except RegionUnavailableError:
                if attempt >= self.max_retries:
                    raise
                self.retries_attempted += 1
                delay_ms = self.backoff_base_ms * (2 ** attempt)
                self._sleep(delay_ms / 1000.0)
        raise AssertionError("unreachable")

    def _execute_once(self, statement: str) -> ResultSet:
        try:
            return self.server.execute(self._session_id, statement)
        except SessionError:
            self._session_id = self.server.connect(self.user)
            return self.server.execute(self._session_id, statement)

    # The paper's SDKs are Java-flavoured; keep the camelCase spelling too.
    executeQuery = execute_query

    def close(self) -> None:
        self.server.disconnect(self._session_id)

    def __enter__(self) -> "JustClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
