"""The HTTP/JSON transport of the PaaS (Section VII-B).

The paper's SDKs talk to JUST over HTTP.  This module provides that
transport boundary in-process: requests and responses are pure
JSON-serializable dictionaries (checked by round-tripping through
``json``), value types are wire-encoded (geometries as WKT, series as
sample lists, trajectories as objects), and large results are fetched
chunk by chunk through a handle — the Figure 2 multi-transmission path
made explicit.

``JustHttpServer.handle`` is the single entry point a real WSGI/ASGI
binding would call; ``JustHttpClient`` is an SDK built purely on it.
"""

from __future__ import annotations

import itertools
import json

from repro.errors import JustError, remote_error
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.geometry.wkt import from_wkt, to_wkt
from repro.service.server import JustServer
from repro.sql.result import ResultSet
from repro.trajectory.model import STSeries, Trajectory, TSeries

#: Rows per fetch of the chunked result path.
DEFAULT_PAGE_ROWS = 500


# -- wire encoding --------------------------------------------------------------

def encode_value(value):
    """Encode one cell value as JSON-safe data with a type tag."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Geometry):
        return {"@type": "wkt", "wkt": to_wkt(value)}
    if isinstance(value, Envelope):
        return {"@type": "mbr", "bounds": list(value.as_tuple())}
    if isinstance(value, STSeries):
        return {"@type": "st_series",
                "points": [[p.lng, p.lat, p.time] for p in value]}
    if isinstance(value, TSeries):
        return {"@type": "t_series",
                "samples": [list(s) for s in value]}
    if isinstance(value, Trajectory):
        return {"@type": "trajectory", "tid": value.tid,
                "oid": value.oid,
                "points": [[p.lng, p.lat, p.time] for p in value.points]}
    # Fallback: readable representation (StayPoint, MatchedPoint, ...).
    return {"@type": "repr", "repr": repr(value)}


def decode_value(value):
    """Inverse of :func:`encode_value` for the tagged encodings."""
    if not isinstance(value, dict) or "@type" not in value:
        return value
    tag = value["@type"]
    if tag == "wkt":
        return from_wkt(value["wkt"])
    if tag == "mbr":
        return Envelope(*value["bounds"])
    if tag == "st_series":
        return STSeries([tuple(p) for p in value["points"]])
    if tag == "t_series":
        return TSeries([tuple(s) for s in value["samples"]])
    if tag == "trajectory":
        return Trajectory(value["tid"], value["oid"],
                          STSeries([tuple(p) for p in value["points"]]))
    return value.get("repr")


def encode_row(row: dict) -> dict:
    return {key: encode_value(value) for key, value in row.items()}


def decode_row(row: dict) -> dict:
    return {key: decode_value(value) for key, value in row.items()}


# -- server ------------------------------------------------------------------------

class JustHttpServer:
    """Routes JSON requests onto a :class:`JustServer`.

    Endpoints (the ``path`` field of a request):

    * ``POST /connect``      {user} -> {session}
    * ``POST /disconnect``   {session} -> {}
    * ``POST /execute``      {session, sql} -> {columns, rows, sim_ms}
      for small results, or {handle, columns, total_rows, sim_ms} for
      large ones (fetched via /fetch).
    * ``POST /fetch``        {handle} -> {rows, done}
    * ``GET  /metrics``      {} -> {metrics, slow_queries} — the
      process-wide registry dump plus the slow-query log (the
      Prometheus-scrape role).
    * ``GET  /profile``      {limit?} -> {profiles} — recent statement
      traces as span trees (the trace-backend role).
    * ``GET  /events``       {kind?, limit?} -> {events, total_by_kind}
      — the structured cluster event log (the master-UI events page).
    * ``GET  /regions``      {} -> {regions} — per-region placement,
      size, and decayed read/write hotness (``sys.regions`` over HTTP).
    * ``GET  /balancer``     {} -> {enabled, servers, runs?, history?}
      — balancer state: per-server load (``sys.servers``) plus, when a
      balancer is enabled, its counters and decision history.
    * ``GET  /replication``  {} -> {enabled, factor?, replicas?, ...}
      — replication state: quorum/shipping counters plus one row per
      replica (``sys.replication`` over HTTP).
    * ``GET  /metrics/history`` {name?, start_ms?, limit?} ->
      {enabled, series?, scrapes?, rows?} — retained metric scrapes
      per downsampling tier (``sys.metrics_history`` over HTTP).
    * ``GET  /slos``         {} -> {enabled, slos?, alerts?, ...}
      — objectives with error-budget state plus per-severity
      burn-rate alert state (``sys.slos``/``sys.alerts`` over HTTP).
    """

    def __init__(self, server: JustServer | None = None,
                 page_rows: int = DEFAULT_PAGE_ROWS):
        self.server = server if server is not None else JustServer()
        self.page_rows = page_rows
        self._handles: dict[str, ResultSet] = {}
        self._handle_ids = itertools.count(1)

    # -- entry point ----------------------------------------------------------
    def handle(self, request: dict) -> dict:
        """Dispatch one request; always returns a JSON-safe response.

        Engine errors become ``{"error": ..., "kind": ...}`` responses
        with the exception class name, never raised across the wire.
        """
        try:
            response = self._route(request)
        except JustError as exc:
            response = {"error": str(exc), "kind": type(exc).__name__}
        # Guarantee the transport property: everything must survive JSON.
        return json.loads(json.dumps(response))

    def _route(self, request: dict) -> dict:
        path = request.get("path")
        if path == "/connect":
            return {"session": self.server.connect(request["user"])}
        if path == "/disconnect":
            self.server.disconnect(request["session"])
            return {}
        if path == "/execute":
            return self._execute(request)
        if path == "/fetch":
            return self._fetch(request)
        if path == "/metrics":
            return {"metrics": self.server.metrics_snapshot(),
                    "slow_queries": self.server.slow_queries()}
        if path == "/profile":
            limit = request.get("limit")
            profiles = self.server.recent_profiles(
                int(limit) if limit is not None else None)
            return {"profiles": [p.as_dict() for p in profiles]}
        if path == "/events":
            limit = request.get("limit")
            return self.server.events_snapshot(
                kind=request.get("kind"),
                limit=int(limit) if limit is not None else None)
        if path == "/regions":
            return {"regions": self.server.regions_snapshot()}
        if path == "/balancer":
            return self.server.balancer_snapshot()
        if path == "/replication":
            return self.server.replication_snapshot()
        if path == "/streams":
            return self.server.streams_snapshot()
        if path == "/metrics/history":
            limit = request.get("limit")
            start_ms = request.get("start_ms")
            return self.server.metrics_history_snapshot(
                name=request.get("name"),
                start_ms=float(start_ms) if start_ms is not None
                else None,
                limit=int(limit) if limit is not None else None)
        if path == "/slos":
            return self.server.slos_snapshot()
        return {"error": f"unknown path {path!r}", "kind": "RouteError"}

    def _execute(self, request: dict) -> dict:
        kwargs = {}
        if request.get("timeout_ms") is not None:
            kwargs["timeout_ms"] = float(request["timeout_ms"])
        if request.get("partial_results"):
            kwargs["partial_results"] = True
        result = self.server.execute(request["session"], request["sql"],
                                     **kwargs)
        rows = result.rows
        base = {"columns": result.columns,
                "sim_ms": round(result.sim_ms, 3)}
        if result.skipped_regions:
            base["skipped_regions"] = result.skipped_regions
        if len(rows) <= self.page_rows:
            base["rows"] = [encode_row(row) for row in rows]
            return base
        handle = f"h{next(self._handle_ids)}"
        self._handles[handle] = result
        base["handle"] = handle
        base["total_rows"] = len(rows)
        return base

    def _fetch(self, request: dict) -> dict:
        handle = request["handle"]
        result = self._handles.get(handle)
        if result is None:
            return {"error": f"unknown or exhausted handle {handle!r}",
                    "kind": "HandleError"}
        rows = []
        while result.has_next() and len(rows) < self.page_rows:
            rows.append(encode_row(result.next()))
        done = not result.has_next()
        if done:
            del self._handles[handle]
        return {"rows": rows, "done": done}


# -- client -----------------------------------------------------------------------

class JustHttpClient:
    """An SDK speaking only the JSON protocol (no engine imports).

    Matches the paper's snippet: ``execute_query`` returns an object
    with ``has_next``/``next`` that transparently pages large results
    through ``/fetch``.
    """

    def __init__(self, transport: JustHttpServer, user: str):
        self._transport = transport
        self.user = user
        self._session = self._connect()

    def _connect(self) -> str:
        response = self._transport.handle(
            {"path": "/connect", "user": self.user})
        return response["session"]

    def execute_query(self, sql: str,
                      timeout_ms: float | None = None,
                      partial_results: bool = False) -> "HttpResultSet":
        request = {"path": "/execute", "session": self._session,
                   "sql": sql}
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        if partial_results:
            request["partial_results"] = True
        response = self._transport.handle(request)
        if response.get("kind") == "SessionError":
            self._session = self._connect()
            request["session"] = self._session
            response = self._transport.handle(request)
        if "error" in response:
            _raise_remote(response)
        return HttpResultSet(self._transport, response)

    def close(self) -> None:
        self._transport.handle({"path": "/disconnect",
                                "session": self._session})

    def __enter__(self) -> "JustHttpClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _raise_remote(response: dict):
    """Re-raise a wire error as its typed engine exception.

    The ``kind`` tag maps back onto the :class:`~repro.errors.JustError`
    hierarchy, so remote callers can distinguish retryable conditions
    (``RegionUnavailableError``, ``ServerOverloadedError``) from fatal
    ones exactly like in-process callers; unknown kinds (transport-level
    ``RouteError``/``HandleError``) degrade to the tagged base error.
    """
    kind = response.get("kind", "")
    if kind == "JustError" or kind not in _KNOWN_KINDS:
        raise JustError(f"[{kind}] {response['error']}")
    raise remote_error(kind, response["error"])


def _collect_kinds():
    def walk(cls):
        yield cls.__name__
        for sub in cls.__subclasses__():
            yield from walk(sub)
    return frozenset(walk(JustError))


_KNOWN_KINDS = _collect_kinds()


class HttpResultSet:
    """Client-side cursor over a (possibly chunked) remote result."""

    def __init__(self, transport: JustHttpServer, response: dict):
        self._transport = transport
        self.columns = response.get("columns", [])
        self.sim_ms = response.get("sim_ms", 0.0)
        self._buffer = [decode_row(r) for r in response.get("rows", [])]
        self._handle = response.get("handle")
        self.total_rows = response.get("total_rows",
                                       len(self._buffer))
        self.skipped_regions = response.get("skipped_regions", [])
        self._position = 0

    @property
    def is_partial(self) -> bool:
        return bool(self.skipped_regions)

    def has_next(self) -> bool:
        if self._position < len(self._buffer):
            return True
        if self._handle is None:
            return False
        fetched = self._transport.handle(
            {"path": "/fetch", "handle": self._handle})
        if "error" in fetched:
            self._handle = None
            return False
        self._buffer = [decode_row(r) for r in fetched["rows"]]
        self._position = 0
        if fetched["done"]:
            self._handle = None
        return bool(self._buffer)

    def next(self) -> dict:
        if not self.has_next():
            raise StopIteration("result set exhausted")
        row = self._buffer[self._position]
        self._position += 1
        return row

    def __iter__(self):
        while self.has_next():
            yield self.next()
