"""The JUST server: one shared engine, many isolated users."""

from __future__ import annotations

from repro.core.engine import JustEngine
from repro.resilience import AdmissionController, Deadline, RequestContext
from repro.service.session import (
    DEFAULT_SESSION_TIMEOUT_S,
    SessionManager,
    UserSession,
)
from repro.sql.result import ResultSet


class JustServer:
    """Multi-user facade over a single shared :class:`JustEngine`.

    The shared engine plays the role of the always-on Spark context the
    paper keeps via Spark Job Server: no per-user startup cost.  Every
    statement executes inside the session user's namespace, so users never
    see (or collide with) each other's tables and views.

    Each statement runs under a :class:`~repro.resilience.RequestContext`:
    an optional deadline (client-supplied ``timeout_ms`` or the server's
    ``default_timeout_ms``) cancels runaway statements cooperatively, and
    ``partial_results`` lets degraded scans return live regions' rows plus
    a skipped-region report instead of failing outright.  An
    :class:`~repro.resilience.AdmissionController` bounds concurrent
    statements so an overload sheds load instead of queueing unboundedly.
    """

    def __init__(self, engine: JustEngine | None = None,
                 session_timeout_s: float = DEFAULT_SESSION_TIMEOUT_S,
                 admission: AdmissionController | None = None,
                 default_timeout_ms: float | None = None):
        self.engine = engine if engine is not None else JustEngine()
        self.sessions = SessionManager(session_timeout_s)
        self.admission = admission if admission is not None \
            else AdmissionController()
        #: Server-side deadline applied when the client sends none
        #: (``None`` disables; like ``hbase.client.operation.timeout``).
        self.default_timeout_ms = default_timeout_ms

    def connect(self, user: str) -> str:
        """Open a session for a user; returns the session id."""
        return self.sessions.create(user).session_id

    def disconnect(self, session_id: str) -> None:
        session = self.sessions.close(session_id)
        if session is not None:
            self._drop_user_views(session)

    def execute(self, session_id: str, statement: str,
                timeout_ms: float | None = None,
                partial_results: bool = False) -> ResultSet:
        """Run one JustQL statement in the session's namespace.

        ``timeout_ms`` is the statement's simulated-time budget
        (falls back to ``default_timeout_ms``); ``partial_results``
        opts in to degraded scans over unavailable regions.  Raises
        :class:`~repro.errors.ServerOverloadedError` when admission
        control sheds the statement.
        """
        self._expire_stale()
        session = self.sessions.get(session_id)
        budget = timeout_ms if timeout_ms is not None \
            else self.default_timeout_ms
        ctx = RequestContext(
            deadline=Deadline(budget) if budget is not None else None,
            partial_results=partial_results)
        self.admission.acquire(session.user)
        try:
            return self.engine.sql(statement,
                                   namespace=session.namespace, ctx=ctx)
        finally:
            self.admission.release(session.user)

    def _expire_stale(self) -> None:
        for session in self.sessions.expire_idle():
            self._drop_user_views(session)

    def _drop_user_views(self, session: UserSession) -> None:
        """Session death clears the user's cached views (Section IV-D)."""
        for name in self.engine.view_names(session.namespace):
            self.engine.drop_view(name)

    # -- administration ------------------------------------------------------
    def user_tables(self, user: str) -> list[str]:
        prefix = f"{user}__"
        return [n[len(prefix):] for n in self.engine.table_names(prefix)]

    def active_users(self) -> list[str]:
        return sorted({s.user for s in self.sessions.active_sessions()})

    def admission_stats(self) -> dict:
        """Operational counters from the admission controller."""
        return self.admission.stats()
