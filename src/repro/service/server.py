"""The JUST server: one shared engine, many isolated users."""

from __future__ import annotations

from collections import deque

from repro.core.engine import JustEngine
from repro.core.systables import SYSTEM_TABLE_SPECS
from repro.observability.events import SessionExpiredEvent
from repro.observability.metrics import DEFAULT_LATENCY_BUCKETS_MS
from repro.observability.profile import QueryProfile
from repro.observability.slowlog import DEFAULT_SLOW_MS, SlowQueryLog
from repro.resilience import AdmissionController, Deadline, RequestContext
from repro.service.session import (
    DEFAULT_SESSION_TIMEOUT_S,
    SessionManager,
    UserSession,
)
from repro.sql.result import ResultSet

#: How many finished statement traces the server keeps for ``/profile``.
DEFAULT_PROFILE_CAPACITY = 64


class JustServer:
    """Multi-user facade over a single shared :class:`JustEngine`.

    The shared engine plays the role of the always-on Spark context the
    paper keeps via Spark Job Server: no per-user startup cost.  Every
    statement executes inside the session user's namespace, so users never
    see (or collide with) each other's tables and views.

    Each statement runs under a :class:`~repro.resilience.RequestContext`:
    an optional deadline (client-supplied ``timeout_ms`` or the server's
    ``default_timeout_ms``) cancels runaway statements cooperatively, and
    ``partial_results`` lets degraded scans return live regions' rows plus
    a skipped-region report instead of failing outright.  An
    :class:`~repro.resilience.AdmissionController` bounds concurrent
    statements so an overload sheds load instead of queueing unboundedly.
    """

    def __init__(self, engine: JustEngine | None = None,
                 session_timeout_s: float = DEFAULT_SESSION_TIMEOUT_S,
                 admission: AdmissionController | None = None,
                 default_timeout_ms: float | None = None,
                 slow_query_ms: float | None = DEFAULT_SLOW_MS,
                 profile_capacity: int = DEFAULT_PROFILE_CAPACITY):
        self.engine = engine if engine is not None else JustEngine()
        self.sessions = SessionManager(session_timeout_s)
        self.admission = admission if admission is not None \
            else AdmissionController()
        #: Server-side deadline applied when the client sends none
        #: (``None`` disables; like ``hbase.client.operation.timeout``).
        self.default_timeout_ms = default_timeout_ms
        #: Process-wide registry shared with the engine and the store;
        #: the admission controller reports into it too.
        self.metrics = self.engine.metrics
        self.admission.bind_metrics(self.metrics)
        # Create the statement histogram bucketed up front: cumulative
        # le-buckets are what make windowed latency SLOs exact, and
        # buckets only apply on first creation.
        self.metrics.histogram("server.statement_sim_ms",
                               buckets=DEFAULT_LATENCY_BUCKETS_MS)
        self.metrics.describe("server.statement_sim_ms",
                              "per-statement simulated latency")
        self.metrics.describe("server.statements",
                              "statements executed, by status")
        #: The engine's structured event log; statement latencies advance
        #: its simulated clock, so region hotness decays with real load.
        self.events = self.engine.events
        self.admission.bind_events(self.events)
        #: Statements slower than ``slow_query_ms`` simulated ms land
        #: here with their trace (``None`` disables the log).
        self.slow_query_log = SlowQueryLog(threshold_ms=slow_query_ms)
        self._profiles: deque[QueryProfile] = deque(maxlen=profile_capacity)
        # The engine installs sys.sessions / sys.slow_queries with empty
        # providers; the server owns the live state, so rebind them here.
        providers = {"sys.sessions": self._session_rows,
                     "sys.slow_queries": self._slow_query_rows}
        for name, columns, types, description in SYSTEM_TABLE_SPECS:
            if name in providers:
                self.engine.register_system_table(
                    name, columns, providers[name],
                    description=description, types=types)

    def connect(self, user: str) -> str:
        """Open a session for a user; returns the session id."""
        return self.sessions.create(user).session_id

    def disconnect(self, session_id: str) -> None:
        session = self.sessions.close(session_id)
        if session is not None:
            self._drop_user_views(session)

    def execute(self, session_id: str, statement: str,
                timeout_ms: float | None = None,
                partial_results: bool = False) -> ResultSet:
        """Run one JustQL statement in the session's namespace.

        ``timeout_ms`` is the statement's simulated-time budget
        (falls back to ``default_timeout_ms``); ``partial_results``
        opts in to degraded scans over unavailable regions.  Raises
        :class:`~repro.errors.ServerOverloadedError` when admission
        control sheds the statement.
        """
        self._expire_stale()
        session = self.sessions.get(session_id)
        budget = timeout_ms if timeout_ms is not None \
            else self.default_timeout_ms
        profile = QueryProfile(statement=statement, user=session.user)
        ctx = RequestContext(
            deadline=Deadline(budget) if budget is not None else None,
            partial_results=partial_results, profile=profile)
        self.admission.acquire(session.user)
        status = "error"
        try:
            result = self.engine.sql(statement,
                                     namespace=session.namespace, ctx=ctx)
            status = "ok"
            return result
        finally:
            self.admission.release(session.user)
            self._observe_statement(profile, session.user, statement,
                                    ctx, status)

    def _observe_statement(self, profile: QueryProfile, user: str,
                           statement: str, ctx: RequestContext,
                           status: str) -> None:
        """Record one finished (or failed) statement everywhere at once."""
        job = ctx.job
        sim_ms = job.elapsed_ms if job is not None else 0.0
        if profile.root.sim_ms == 0.0:
            # DDL and failed statements never reach the per-statement
            # finish() call; seal the trace with what the job charged.
            profile.finish(sim_ms)
        self._profiles.append(profile)
        self.metrics.counter("server.statements", status=status).inc()
        # The trace id rides along as the histogram exemplar, so a
        # latency alert can name an offending query.
        self.metrics.histogram("server.statement_sim_ms").observe(
            sim_ms, exemplar=profile.trace_id)
        breakdown = dict(job.breakdown) if job is not None else {}
        self.slow_query_log.observe(statement, user, sim_ms,
                                    breakdown=breakdown,
                                    profile=profile.as_dict(),
                                    trace_id=profile.trace_id)
        # Statement latencies are the event log's notion of elapsed time;
        # advancing it here is what makes region hotness rates decay.
        self.events.advance(sim_ms)
        # The monitoring chore: scrape the registry into the metrics
        # history and re-evaluate SLO burn rates on the same clock.
        if self.engine.monitor is not None:
            self.engine.monitor.maybe_tick()
        # The master's balancer chore: with a balancer enabled on the
        # engine, each statement's clock advance may trigger a balance
        # pass (the policy interval gates how often).
        if self.engine.balancer is not None:
            self.engine.balancer.maybe_tick()
        # Likewise the replication anti-entropy chore: heal lagging or
        # rebuilding followers as simulated time passes.
        if self.engine.store.replication is not None:
            self.engine.store.replication.maybe_tick()

    def _expire_stale(self) -> None:
        for session in self.sessions.expire_idle():
            self.events.emit(SessionExpiredEvent(
                user=session.user, session_id=session.session_id,
                idle_s=round(session.idle_seconds(), 3)))
            self._drop_user_views(session)

    def _drop_user_views(self, session: UserSession) -> None:
        """Session death clears the user's cached views (Section IV-D).

        Materialized views survive: they are loader-maintained pipeline
        outputs, not per-session caches.
        """
        for name in self.engine.view_names(session.namespace):
            if self.engine.is_materialized_view(name):
                continue
            self.engine.drop_view(name)

    # -- administration ------------------------------------------------------
    def user_tables(self, user: str) -> list[str]:
        prefix = f"{user}__"
        return [n[len(prefix):] for n in self.engine.table_names(prefix)]

    def active_users(self) -> list[str]:
        return sorted({s.user for s in self.sessions.active_sessions()})

    def admission_stats(self) -> dict:
        """Operational counters from the admission controller."""
        return self.admission.stats()

    # -- observability -------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """JSON-safe dump of every metric, with derived gauges refreshed.

        The block-cache hit ratio is derived at read time from the
        store's authoritative counters (hits over touched blocks), so it
        stays correct across flush/compact cycles instead of drifting as
        a sampled value would.
        """
        stats = self.engine.store.stats
        touched = stats.cache_hits + stats.blocks_read
        ratio = stats.cache_hits / touched if touched else 0.0
        self.metrics.gauge("kvstore.cache_hit_ratio").set(ratio)
        used = sum(self.engine.store.cache_for(s).used_bytes
                   for s in range(self.engine.store.num_servers))
        self.metrics.gauge("kvstore.cache_used_bytes").set(used)
        self.metrics.gauge("server.slow_queries_logged").set(
            self.slow_query_log.total_logged)
        return self.metrics.snapshot()

    def recent_profiles(self, limit: int | None = None) -> list[QueryProfile]:
        """Most recent statement traces, newest last."""
        profiles = list(self._profiles)
        return profiles if limit is None else profiles[-limit:]

    def slow_queries(self) -> list[dict]:
        """The slow-query log as JSON-safe dicts, oldest first."""
        return self.slow_query_log.as_dicts()

    def _session_rows(self) -> list[dict]:
        return [{"session_id": s.session_id, "user": s.user,
                 "created_at": round(s.created_at, 3),
                 "idle_s": round(s.idle_seconds(), 3)}
                for s in self.sessions.active_sessions()]

    def _slow_query_rows(self) -> list[dict]:
        return [{"seq": e.seq, "user": e.user,
                 "trace_id": e.trace_id,
                 "sim_ms": round(e.sim_ms, 3), "statement": e.statement}
                for e in self.slow_query_log.entries()]

    def events_snapshot(self, kind: str | None = None,
                        limit: int | None = None) -> dict:
        """JSON-safe event-log dump for the ``/events`` HTTP route."""
        return {"events": self.events.as_dicts(kind=kind, limit=limit),
                "total_by_kind": dict(self.events.total_by_kind)}

    def regions_snapshot(self) -> list[dict]:
        """JSON-safe ``sys.regions`` rows for the ``/regions`` route."""
        return self.engine.system_rows("sys.regions")

    def balancer_snapshot(self) -> dict:
        """JSON-safe balancer state for the ``/balancer`` HTTP route."""
        balancer = self.engine.balancer
        snapshot = {"enabled": balancer is not None,
                    "servers": self.engine.system_rows("sys.servers")}
        if balancer is not None:
            snapshot.update(balancer.snapshot())
            snapshot["history"] = balancer.history_rows()
        return snapshot

    def streams_snapshot(self) -> dict:
        """JSON-safe ``sys.streams`` rows for the ``/streams`` route."""
        return {"streams": self.engine.system_rows("sys.streams")}

    def metrics_history_snapshot(self, name: str | None = None,
                                 start_ms: float | None = None,
                                 limit: int | None = None) -> dict:
        """JSON-safe metrics history for ``/metrics/history``."""
        monitor = self.engine.monitor
        snapshot = {"enabled": monitor is not None}
        if monitor is not None:
            rows = monitor.history_rows(name=name, start_ms=start_ms)
            snapshot["series"] = len(monitor.history)
            snapshot["scrapes"] = monitor.scraper.scrapes
            snapshot["rows"] = rows if limit is None else rows[-limit:]
        return snapshot

    def slos_snapshot(self) -> dict:
        """JSON-safe SLO + alert state for the ``/slos`` route."""
        monitor = self.engine.monitor
        snapshot = {"enabled": monitor is not None}
        if monitor is not None:
            snapshot.update(monitor.snapshot())
            snapshot["slos"] = monitor.slo_rows()
            snapshot["alerts"] = monitor.alert_rows()
        return snapshot

    def replication_snapshot(self) -> dict:
        """JSON-safe replication state for the ``/replication`` route."""
        replication = self.engine.store.replication
        snapshot = {"enabled": replication is not None}
        if replication is not None:
            snapshot.update(replication.snapshot())
            snapshot["replicas"] = self.engine.system_rows(
                "sys.replication")
        return snapshot
