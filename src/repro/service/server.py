"""The JUST server: one shared engine, many isolated users."""

from __future__ import annotations

from repro.core.engine import JustEngine
from repro.service.session import (
    DEFAULT_SESSION_TIMEOUT_S,
    SessionManager,
    UserSession,
)
from repro.sql.result import ResultSet


class JustServer:
    """Multi-user facade over a single shared :class:`JustEngine`.

    The shared engine plays the role of the always-on Spark context the
    paper keeps via Spark Job Server: no per-user startup cost.  Every
    statement executes inside the session user's namespace, so users never
    see (or collide with) each other's tables and views.
    """

    def __init__(self, engine: JustEngine | None = None,
                 session_timeout_s: float = DEFAULT_SESSION_TIMEOUT_S):
        self.engine = engine if engine is not None else JustEngine()
        self.sessions = SessionManager(session_timeout_s)

    def connect(self, user: str) -> str:
        """Open a session for a user; returns the session id."""
        return self.sessions.create(user).session_id

    def disconnect(self, session_id: str) -> None:
        session = self.sessions.close(session_id)
        if session is not None:
            self._drop_user_views(session)

    def execute(self, session_id: str, statement: str) -> ResultSet:
        """Run one JustQL statement in the session's namespace."""
        self._expire_stale()
        session = self.sessions.get(session_id)
        return self.engine.sql(statement, namespace=session.namespace)

    def _expire_stale(self) -> None:
        for session in self.sessions.expire_idle():
            self._drop_user_views(session)

    def _drop_user_views(self, session: UserSession) -> None:
        """Session death clears the user's cached views (Section IV-D)."""
        for name in self.engine.view_names(session.namespace):
            self.engine.drop_view(name)

    # -- administration ------------------------------------------------------
    def user_tables(self, user: str) -> list[str]:
        prefix = f"{user}__"
        return [n[len(prefix):] for n in self.engine.table_names(prefix)]

    def active_users(self) -> list[str]:
        return sorted({s.user for s in self.sessions.active_sessions()})
