"""Service layer (Section VII): shared context, users, sessions, SDK.

JUST runs as a PaaS: one shared execution context serves every user
(eliminating per-query Spark-session construction), and each user's
tables and views live in a private namespace implemented as an invisible
name prefix.  ``JustClient`` is the SDK: it talks to the server and
exposes the cursor-style result interface of the paper's code snippet.
"""

from repro.service.session import SessionManager, UserSession
from repro.service.server import JustServer
from repro.service.client import JustClient

__all__ = ["SessionManager", "UserSession", "JustServer", "JustClient"]
