"""Exception hierarchy for the JUST reproduction.

Every error raised by the engine derives from :class:`JustError` so callers
can catch engine failures without swallowing programming errors.  The
simulated cluster additionally raises :class:`SimulatedOutOfMemoryError` when
a baseline system exceeds its configured memory budget — this models the
out-of-memory failures the paper reports for the Spark-based systems rather
than crashing the host interpreter.
"""

from __future__ import annotations


class JustError(Exception):
    """Base class for all errors raised by the engine."""


class SchemaError(JustError):
    """A table schema is malformed or an operation violates it."""


class CatalogError(JustError):
    """A meta-table operation failed (unknown table, duplicate name, ...)."""


class TableNotFoundError(CatalogError):
    """The referenced table or view does not exist."""

    def __init__(self, name: str):
        super().__init__(f"table or view not found: {name!r}")
        self.name = name


class TableExistsError(CatalogError):
    """A table or view with this name already exists."""

    def __init__(self, name: str):
        super().__init__(f"table or view already exists: {name!r}")
        self.name = name


class ParseError(JustError):
    """A JustQL statement could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None,
                 statement: str | None = None):
        detail = message
        if position is not None and statement is not None:
            snippet = statement[max(0, position - 20):position + 20]
            detail = f"{message} at position {position}: ...{snippet}..."
        super().__init__(detail)
        self.position = position
        self.statement = statement


class AnalysisError(JustError):
    """Semantic analysis of a parsed statement failed."""


class ExecutionError(JustError):
    """A physical plan failed during execution."""


class UnsupportedOperationError(JustError):
    """The operation is valid SQL but not supported by this engine."""


class GeometryError(JustError):
    """Invalid geometry construction or operation."""


class IndexError_(JustError):
    """An index strategy was asked to encode data it cannot handle."""


class RegionUnavailableError(JustError):
    """A key-range region is offline while its server recovers.

    Raised between a region server's crash and the completion of
    failover + WAL replay for its regions.  Clients retry with bounded
    exponential backoff, like an HBase client during region reassignment.
    """

    def __init__(self, table: str, region_id: int, server: int,
                 reason: str | None = None):
        if reason is None:
            reason = (f"region server {server} failed and recovery has "
                      f"not completed")
        super().__init__(
            f"region {region_id} of table {table!r} is unavailable: "
            f"{reason}")
        self.table = table
        self.region_id = region_id
        self.server = server
        self.reason = reason


class ReplicationQuorumError(RegionUnavailableError):
    """A SYNC write could not gather enough replica WAL acknowledgements.

    Raised when too few follower replicas are reachable and live to make
    the write durable on a quorum of copies.  Retryable — the
    anti-entropy chore heals followers and the next attempt may succeed.
    Like any distributed write that times out mid-commit, the outcome is
    indeterminate: the record reached the primary's WAL before the
    quorum check failed, so a retried-then-abandoned write may still
    surface after a failover.
    """

    def __init__(self, table: str, region_id: int, server: int,
                 acks: int, required: int):
        super().__init__(
            table, region_id, server,
            reason=(f"replication quorum not met: {acks}/{required} "
                    f"replica WAL acks"))
        self.acks = acks
        self.required = required


class QueryTimeoutError(JustError):
    """A statement exceeded its deadline and was cooperatively cancelled.

    Deadlines are measured on the simulated clock: every cost charged to
    the statement's job consumes budget, and scan/aggregation loops check
    the remaining budget between units of work, so the overrun is bounded
    by the granularity of a single charge.
    """

    def __init__(self, budget_ms: float, consumed_ms: float,
                 operation: str = ""):
        where = f" during {operation}" if operation else ""
        super().__init__(
            f"deadline of {budget_ms:.1f} ms exceeded{where}: "
            f"{consumed_ms:.1f} sim-ms consumed")
        self.budget_ms = budget_ms
        self.consumed_ms = consumed_ms
        self.operation = operation

    @property
    def overrun_ms(self) -> float:
        return self.consumed_ms - self.budget_ms


class ServerOverloadedError(JustError):
    """The server shed this statement: admission control is at capacity.

    Retryable — capacity frees up as in-flight statements finish, so
    clients back off and retry (and their circuit breaker counts these
    as failures, like HBase's ``RegionTooBusyException``).
    """

    def __init__(self, scope: str, in_flight: int, limit: int):
        super().__init__(
            f"server overloaded ({scope}): {in_flight} statements "
            f"in flight, limit {limit}")
        self.scope = scope
        self.in_flight = in_flight
        self.limit = limit


class CircuitOpenError(JustError):
    """The client's circuit breaker is open: the call failed fast.

    Raised client-side without touching the server after repeated
    retryable failures; ``retry_after_s`` is the cooldown remaining
    before the breaker half-opens and lets a probe through.
    """

    def __init__(self, retry_after_s: float):
        super().__init__(
            f"circuit breaker open; next probe allowed in "
            f"{max(0.0, retry_after_s):.3f} s")
        self.retry_after_s = retry_after_s


class SessionError(JustError):
    """A service-layer session operation failed (expired, unknown user...)."""


class SimulatedOutOfMemoryError(JustError):
    """A simulated system exceeded its cluster memory budget.

    The paper reports e.g. "Simba throws an out of memory exception when the
    data size of Traj is 40%"; baselines raise this error under the same
    conditions instead of exhausting host memory.
    """

    def __init__(self, system: str, required_bytes: int, budget_bytes: int):
        super().__init__(
            f"{system}: simulated OOM, requires {required_bytes} bytes "
            f"but the cluster memory budget is {budget_bytes} bytes")
        self.system = system
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes


# -- wire-format error mapping ------------------------------------------------

#: Errors a client may safely retry: the condition is transient (a region
#: mid-failover, a server shedding load) rather than a property of the
#: statement itself.
RETRYABLE_ERRORS = ("RegionUnavailableError", "ReplicationQuorumError",
                    "ServerOverloadedError")


def error_class_for(kind: str) -> type[JustError]:
    """The :class:`JustError` subclass named ``kind``, or ``JustError``.

    Used by the HTTP transport to map a wire-level ``kind`` tag back onto
    the typed hierarchy so remote clients can distinguish retryable from
    fatal failures.
    """
    def walk(cls):
        yield cls
        for sub in cls.__subclasses__():
            yield from walk(sub)
    for cls in walk(JustError):
        if cls.__name__ == kind:
            return cls
    return JustError


def remote_error(kind: str, message: str) -> JustError:
    """Reconstruct a typed engine error from its wire representation.

    The instance satisfies ``isinstance`` checks against the hierarchy
    and carries the server's message; constructor-derived attributes
    (e.g. ``RegionUnavailableError.region_id``) are not recovered from
    the wire and are absent on the reconstructed object.
    """
    cls = error_class_for(kind)
    exc = cls.__new__(cls)
    Exception.__init__(exc, message)
    return exc


def is_retryable(exc: BaseException) -> bool:
    """True for transient errors a client should back off and retry."""
    return isinstance(exc, (RegionUnavailableError, ServerOverloadedError))
