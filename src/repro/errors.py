"""Exception hierarchy for the JUST reproduction.

Every error raised by the engine derives from :class:`JustError` so callers
can catch engine failures without swallowing programming errors.  The
simulated cluster additionally raises :class:`SimulatedOutOfMemoryError` when
a baseline system exceeds its configured memory budget — this models the
out-of-memory failures the paper reports for the Spark-based systems rather
than crashing the host interpreter.
"""

from __future__ import annotations


class JustError(Exception):
    """Base class for all errors raised by the engine."""


class SchemaError(JustError):
    """A table schema is malformed or an operation violates it."""


class CatalogError(JustError):
    """A meta-table operation failed (unknown table, duplicate name, ...)."""


class TableNotFoundError(CatalogError):
    """The referenced table or view does not exist."""

    def __init__(self, name: str):
        super().__init__(f"table or view not found: {name!r}")
        self.name = name


class TableExistsError(CatalogError):
    """A table or view with this name already exists."""

    def __init__(self, name: str):
        super().__init__(f"table or view already exists: {name!r}")
        self.name = name


class ParseError(JustError):
    """A JustQL statement could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None,
                 statement: str | None = None):
        detail = message
        if position is not None and statement is not None:
            snippet = statement[max(0, position - 20):position + 20]
            detail = f"{message} at position {position}: ...{snippet}..."
        super().__init__(detail)
        self.position = position
        self.statement = statement


class AnalysisError(JustError):
    """Semantic analysis of a parsed statement failed."""


class ExecutionError(JustError):
    """A physical plan failed during execution."""


class UnsupportedOperationError(JustError):
    """The operation is valid SQL but not supported by this engine."""


class GeometryError(JustError):
    """Invalid geometry construction or operation."""


class IndexError_(JustError):
    """An index strategy was asked to encode data it cannot handle."""


class RegionUnavailableError(JustError):
    """A key-range region is offline while its server recovers.

    Raised between a region server's crash and the completion of
    failover + WAL replay for its regions.  Clients retry with bounded
    exponential backoff, like an HBase client during region reassignment.
    """

    def __init__(self, table: str, region_id: int, server: int):
        super().__init__(
            f"region {region_id} of table {table!r} is unavailable: "
            f"region server {server} failed and recovery has not "
            f"completed")
        self.table = table
        self.region_id = region_id
        self.server = server


class SessionError(JustError):
    """A service-layer session operation failed (expired, unknown user...)."""


class SimulatedOutOfMemoryError(JustError):
    """A simulated system exceeded its cluster memory budget.

    The paper reports e.g. "Simba throws an out of memory exception when the
    data size of Traj is 40%"; baselines raise this error under the same
    conditions instead of exhausting host memory.
    """

    def __init__(self, system: str, required_bytes: int, budget_bytes: int):
        super().__init__(
            f"{system}: simulated OOM, requires {required_bytes} bytes "
            f"but the cluster memory budget is {budget_bytes} bytes")
        self.system = system
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes
