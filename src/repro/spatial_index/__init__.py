"""In-memory spatial indexes.

These are the index structures of the comparison systems (Section II):
STR-packed R-trees (Simba, SpatialSpark local indexes), quad-trees
(LocationSpark), uniform grids (SpatialHadoop/Hadoop-GIS partitioning),
and k-d trees (MD-HBase/BBoxDB global partitioning).  Each reports its
approximate memory footprint so the cluster memory budget can be enforced.
"""

from repro.spatial_index.rtree import RTree
from repro.spatial_index.quadtree import QuadTree
from repro.spatial_index.grid import GridIndex
from repro.spatial_index.kdtree import KDTree

__all__ = ["RTree", "QuadTree", "GridIndex", "KDTree"]
