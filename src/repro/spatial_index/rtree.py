"""An STR-bulk-loaded R-tree."""

from __future__ import annotations

import heapq
import itertools
import math

from repro.geometry.envelope import Envelope

DEFAULT_NODE_CAPACITY = 16


class _Node:
    __slots__ = ("envelope", "children", "entries", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.children: list[_Node] = []
        self.entries: list[tuple[Envelope, object]] = []
        self.envelope: Envelope | None = None

    def recompute_envelope(self) -> None:
        envelopes = ([e for e, _v in self.entries] if self.is_leaf
                     else [c.envelope for c in self.children])
        self.envelope = Envelope.union_all(envelopes)


class RTree:
    """Sort-Tile-Recursive packed R-tree over ``(envelope, value)`` pairs.

    Bulk loading is the construction path the Spark-based systems use
    (build once over an RDD partition); there is no incremental insert,
    matching those systems' inability to update without a rebuild.
    """

    def __init__(self, items: list[tuple[Envelope, object]],
                 node_capacity: int = DEFAULT_NODE_CAPACITY):
        if node_capacity < 2:
            raise ValueError("node_capacity must be >= 2")
        self.node_capacity = node_capacity
        self.size = len(items)
        self._height = 0
        self.root = self._bulk_load(list(items))

    # -- construction --------------------------------------------------------
    def _bulk_load(self, items) -> _Node | None:
        if not items:
            return None
        leaves = self._pack_leaves(items)
        level = leaves
        self._height = 1
        while len(level) > 1:
            level = self._pack_internal(level)
            self._height += 1
        return level[0]

    def _pack_leaves(self, items) -> list[_Node]:
        capacity = self.node_capacity
        num_leaves = math.ceil(len(items) / capacity)
        slices = max(1, math.ceil(math.sqrt(num_leaves)))
        items.sort(key=lambda it: it[0].center[0])
        per_slice = math.ceil(len(items) / slices)
        leaves = []
        for i in range(0, len(items), per_slice):
            strip = sorted(items[i:i + per_slice],
                           key=lambda it: it[0].center[1])
            for j in range(0, len(strip), capacity):
                node = _Node(is_leaf=True)
                node.entries = strip[j:j + capacity]
                node.recompute_envelope()
                leaves.append(node)
        return leaves

    def _pack_internal(self, nodes: list[_Node]) -> list[_Node]:
        capacity = self.node_capacity
        num_parents = math.ceil(len(nodes) / capacity)
        slices = max(1, math.ceil(math.sqrt(num_parents)))
        nodes.sort(key=lambda n: n.envelope.center[0])
        per_slice = math.ceil(len(nodes) / slices)
        parents = []
        for i in range(0, len(nodes), per_slice):
            strip = sorted(nodes[i:i + per_slice],
                           key=lambda n: n.envelope.center[1])
            for j in range(0, len(strip), capacity):
                parent = _Node(is_leaf=False)
                parent.children = strip[j:j + capacity]
                parent.recompute_envelope()
                parents.append(parent)
        return parents

    # -- queries --------------------------------------------------------------
    def range_query(self, query: Envelope) -> list[object]:
        """Values whose envelope intersects ``query``.

        Also returns the number of index nodes visited via
        :attr:`last_nodes_visited` (the baselines' scan-cost metric).
        """
        self.last_nodes_visited = 0
        out: list[object] = []
        if self.root is None:
            return out
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.last_nodes_visited += 1
            if not node.envelope.intersects(query):
                continue
            if node.is_leaf:
                out.extend(value for envelope, value in node.entries
                           if envelope.intersects(query))
            else:
                stack.extend(node.children)
        return out

    def knn(self, lng: float, lat: float, k: int) -> list[object]:
        """Best-first k nearest values by envelope distance."""
        if self.root is None or k <= 0:
            return []
        self.last_nodes_visited = 0
        counter = itertools.count()
        heap: list[tuple[float, int, object, bool]] = [
            (self.root.envelope.min_distance_to_point(lng, lat),
             next(counter), self.root, False)]
        out: list[object] = []
        while heap and len(out) < k:
            distance, _n, item, is_value = heapq.heappop(heap)
            if is_value:
                out.append(item)
                continue
            node: _Node = item
            self.last_nodes_visited += 1
            if node.is_leaf:
                for envelope, value in node.entries:
                    heapq.heappush(
                        heap,
                        (envelope.min_distance_to_point(lng, lat),
                         next(counter), value, True))
            else:
                for child in node.children:
                    heapq.heappush(
                        heap,
                        (child.envelope.min_distance_to_point(lng, lat),
                         next(counter), child, False))
        return out

    # -- introspection -----------------------------------------------------------
    @property
    def height(self) -> int:
        return self._height

    def node_count(self) -> int:
        if self.root is None:
            return 0
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint (entries + node overhead)."""
        return self.size * 72 + self.node_count() * 96
