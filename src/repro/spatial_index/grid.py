"""A uniform grid index (SpatialSpark / Hadoop-GIS partitioning)."""

from __future__ import annotations

import math
from collections import defaultdict

from repro.geometry.envelope import Envelope


class GridIndex:
    """Fixed ``cols x rows`` grid over a bounding envelope.

    Extended objects are registered in every cell their envelope overlaps;
    range queries deduplicate by object identity.
    """

    def __init__(self, bounds: Envelope, cols: int, rows: int):
        if cols < 1 or rows < 1:
            raise ValueError("grid needs at least one column and row")
        self.bounds = bounds
        self.cols = cols
        self.rows = rows
        self._cell_w = bounds.width / cols or 1e-12
        self._cell_h = bounds.height / rows or 1e-12
        self._cells: dict[tuple[int, int], list[tuple[Envelope, object]]] \
            = defaultdict(list)
        self.size = 0

    def _clamp_col(self, lng: float) -> int:
        return min(self.cols - 1,
                   max(0, math.floor((lng - self.bounds.min_lng)
                                     / self._cell_w)))

    def _clamp_row(self, lat: float) -> int:
        return min(self.rows - 1,
                   max(0, math.floor((lat - self.bounds.min_lat)
                                     / self._cell_h)))

    def insert(self, envelope: Envelope, value: object) -> None:
        c1, c2 = self._clamp_col(envelope.min_lng), \
            self._clamp_col(envelope.max_lng)
        r1, r2 = self._clamp_row(envelope.min_lat), \
            self._clamp_row(envelope.max_lat)
        for c in range(c1, c2 + 1):
            for r in range(r1, r2 + 1):
                self._cells[(c, r)].append((envelope, value))
        self.size += 1

    def range_query(self, query: Envelope) -> list[object]:
        """Values whose envelope intersects ``query`` (deduplicated)."""
        self.last_cells_visited = 0
        c1, c2 = self._clamp_col(query.min_lng), \
            self._clamp_col(query.max_lng)
        r1, r2 = self._clamp_row(query.min_lat), \
            self._clamp_row(query.max_lat)
        seen: set[int] = set()
        out: list[object] = []
        for c in range(c1, c2 + 1):
            for r in range(r1, r2 + 1):
                self.last_cells_visited += 1
                for envelope, value in self._cells.get((c, r), ()):
                    if id(value) in seen:
                        continue
                    if envelope.intersects(query):
                        seen.add(id(value))
                        out.append(value)
        return out

    def cell_items(self, col: int, row: int) -> int:
        return len(self._cells.get((col, row), ()))

    def occupied_cells(self) -> int:
        return sum(1 for items in self._cells.values() if items)

    def memory_bytes(self) -> int:
        replicated = sum(len(v) for v in self._cells.values())
        return replicated * 56 + self.occupied_cells() * 80
