"""A point quad-tree (LocationSpark's local index)."""

from __future__ import annotations

from repro.geometry.envelope import Envelope

DEFAULT_LEAF_CAPACITY = 32
DEFAULT_MAX_DEPTH = 16


class _QNode:
    __slots__ = ("envelope", "points", "children", "depth")

    def __init__(self, envelope: Envelope, depth: int):
        self.envelope = envelope
        self.points: list[tuple[float, float, object]] | None = []
        self.children: tuple[_QNode, ...] | None = None
        self.depth = depth


class QuadTree:
    """A region quad-tree over ``(lng, lat, value)`` points."""

    def __init__(self, bounds: Envelope,
                 leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
                 max_depth: int = DEFAULT_MAX_DEPTH):
        self.bounds = bounds
        self.leaf_capacity = leaf_capacity
        self.max_depth = max_depth
        self.root = _QNode(bounds, 0)
        self.size = 0

    def insert(self, lng: float, lat: float, value: object) -> bool:
        """Insert a point; returns False when outside the tree bounds."""
        if not self.bounds.contains_point(lng, lat):
            return False
        node = self.root
        while node.children is not None:
            node = self._child_for(node, lng, lat)
        node.points.append((lng, lat, value))
        self.size += 1
        if (len(node.points) > self.leaf_capacity
                and node.depth < self.max_depth):
            self._split(node)
        return True

    def _child_for(self, node: _QNode, lng: float, lat: float) -> _QNode:
        cx, cy = node.envelope.center
        index = (1 if lng >= cx else 0) | (2 if lat >= cy else 0)
        return node.children[index]

    def _split(self, node: _QNode) -> None:
        quadrants = node.envelope.quadrants()  # SW, SE, NW, NE
        node.children = tuple(_QNode(q, node.depth + 1) for q in quadrants)
        points = node.points
        node.points = None
        for lng, lat, value in points:
            self._child_for(node, lng, lat).points.append((lng, lat, value))
        for child in node.children:
            if (len(child.points) > self.leaf_capacity
                    and child.depth < self.max_depth):
                self._split(child)

    def range_query(self, query: Envelope) -> list[object]:
        """Values inside ``query``; counts nodes visited."""
        self.last_nodes_visited = 0
        out: list[object] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self.last_nodes_visited += 1
            if not node.envelope.intersects(query):
                continue
            if node.children is not None:
                stack.extend(node.children)
                continue
            for lng, lat, value in node.points:
                if query.contains_point(lng, lat):
                    out.append(value)
        return out

    def node_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if node.children is not None:
                stack.extend(node.children)
        return count

    def memory_bytes(self) -> int:
        return self.size * 56 + self.node_count() * 88
