"""A 2D k-d tree (MD-HBase / BBoxDB global partitioning)."""

from __future__ import annotations

import heapq
import itertools

from repro.geometry.envelope import Envelope


class _KDNode:
    __slots__ = ("point", "value", "axis", "left", "right")

    def __init__(self, point, value, axis):
        self.point = point
        self.value = value
        self.axis = axis
        self.left: _KDNode | None = None
        self.right: _KDNode | None = None


class KDTree:
    """Balanced k-d tree bulk-built over ``(lng, lat, value)`` points."""

    def __init__(self, points: list[tuple[float, float, object]]):
        self.size = len(points)
        self.root = self._build(list(points), 0)

    def _build(self, points, depth) -> _KDNode | None:
        if not points:
            return None
        axis = depth % 2
        points.sort(key=lambda p: p[axis])
        median = len(points) // 2
        lng, lat, value = points[median]
        node = _KDNode((lng, lat), value, axis)
        node.left = self._build(points[:median], depth + 1)
        node.right = self._build(points[median + 1:], depth + 1)
        return node

    def range_query(self, query: Envelope) -> list[object]:
        """Values whose point lies inside ``query``."""
        out: list[object] = []
        self.last_nodes_visited = 0
        lo = (query.min_lng, query.min_lat)
        hi = (query.max_lng, query.max_lat)
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            self.last_nodes_visited += 1
            axis = node.axis
            if query.contains_point(*node.point):
                out.append(node.value)
            if node.point[axis] >= lo[axis]:
                stack.append(node.left)
            if node.point[axis] <= hi[axis]:
                stack.append(node.right)
        return out

    def knn(self, lng: float, lat: float, k: int) -> list[object]:
        """k nearest values by planar distance (best-first)."""
        if self.root is None or k <= 0:
            return []
        counter = itertools.count()
        # Max-heap of current best k: (-distance, n, value)
        best: list[tuple[float, int, object]] = []
        query = (lng, lat)

        def visit(node: _KDNode | None) -> None:
            if node is None:
                return
            dx = node.point[0] - lng
            dy = node.point[1] - lat
            distance = (dx * dx + dy * dy) ** 0.5
            if len(best) < k:
                heapq.heappush(best, (-distance, next(counter), node.value))
            elif distance < -best[0][0]:
                heapq.heapreplace(best,
                                  (-distance, next(counter), node.value))
            axis = node.axis
            diff = query[axis] - node.point[axis]
            near, far = (node.left, node.right) if diff < 0 \
                else (node.right, node.left)
            visit(near)
            if len(best) < k or abs(diff) < -best[0][0]:
                visit(far)

        visit(self.root)
        ordered = sorted(best, key=lambda item: -item[0])
        return [value for _d, _n, value in ordered]

    def memory_bytes(self) -> int:
        return self.size * 88
