"""A JustQL shell (the web-portal/notebook stand-in of Figure 1).

One-shot::

    python -m repro "CREATE TABLE t (fid integer:primary key, geom point)"
    python -m repro --script setup.sql

Interactive::

    python -m repro
    justql> SHOW TABLES;

Fault-tolerance demo (crash a region server, measure recovery)::

    python -m repro faults --policy sync --kill-after 2000

Request-resilience demo (deadlines/partial results vs a sick server)::

    python -m repro resilience --fault flaky --queries 50

Observability demo (metrics registry, EXPLAIN ANALYZE, slow-query log)::

    python -m repro metrics --rows 2000 --repeat 5

Cluster-introspection demo (region heatmap over the sys.* tables)::

    python -m repro top --once

Load-balancer demo (zipfian multi-tenant skew, balancer off vs on)::

    python -m repro balance --quick

Replication demo (quorum writes, promote failover, hedged reads)::

    python -m repro replicate --quick

Streaming demo (watermarked windows, materialized views, geofence
alerts over a transit-delay feed)::

    python -m repro stream --quick

Monitoring dashboard (sparklines over the scraped metrics history,
SLO burn-rate alerting against an injected gray failure)::

    python -m repro dash --once

The shell keeps one engine (and one user session) for its lifetime, prints
result sets as aligned tables, and reports each query's simulated
latency.  ``--user`` picks the namespace; multiple shells could share an
engine through the service layer, but the CLI is single-user by design.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import JustError
from repro.service.client import JustClient
from repro.service.server import JustServer
from repro.sql.result import ResultSet

PROMPT = "justql> "
CONTINUATION = "   ...> "

#: Truncate very wide cells so tables stay readable.
MAX_CELL_WIDTH = 48


def format_result(result: ResultSet, max_rows: int = 50) -> str:
    """Render a result set as an aligned text table."""
    rows = result.rows
    if result.message is not None and result.columns == ["status"]:
        return result.message
    if not rows:
        return "(0 rows)"
    columns = result.columns or list(rows[0].keys())

    def cell(value) -> str:
        text = "NULL" if value is None else str(value)
        if len(text) > MAX_CELL_WIDTH:
            text = text[:MAX_CELL_WIDTH - 1] + "…"
        return text

    shown = rows[:max_rows]
    table = [[cell(row.get(c)) for c in columns] for row in shown]
    widths = [max(len(column), *(len(line[i]) for line in table))
              for i, column in enumerate(columns)]
    lines = [" | ".join(c.ljust(w) for c, w in zip(columns, widths)),
             "-+-".join("-" * w for w in widths)]
    for line in table:
        lines.append(" | ".join(c.ljust(w)
                                for c, w in zip(line, widths)))
    footer = f"({len(rows)} rows"
    if len(rows) > max_rows:
        footer += f", showing first {max_rows}"
    if result.job is not None:
        footer += f", {result.sim_ms:.1f} sim-ms"
    footer += ")"
    lines.append(footer)
    return "\n".join(lines)


def split_statements(text: str) -> list[str]:
    """Split a script on semicolons, respecting quoted strings."""
    statements = []
    current: list[str] = []
    quote: str | None = None
    for ch in text:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
            current.append(ch)
            continue
        if ch == ";":
            statement = "".join(current).strip()
            if statement:
                statements.append(statement)
            current = []
            continue
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements


class Shell:
    """State and execution for one CLI session."""

    def __init__(self, user: str = "cli",
                 out=None):
        self.out = out if out is not None else sys.stdout
        self.client = JustClient(JustServer(), user)

    def execute(self, statement: str) -> bool:
        """Run one statement, print the result; False on engine error."""
        try:
            result = self.client.execute_query(statement)
        except JustError as exc:
            print(f"error: {exc}", file=self.out)
            return False
        print(format_result(result), file=self.out)
        return True

    def run_script(self, text: str) -> int:
        failures = 0
        for statement in split_statements(text):
            if not self.execute(statement):
                failures += 1
        return failures

    def interact(self, stdin=None) -> None:
        stdin = stdin if stdin is not None else sys.stdin
        print("JUST reproduction — JustQL shell "
              "(end statements with ';', Ctrl-D to exit)", file=self.out)
        buffer: list[str] = []
        while True:
            prompt = CONTINUATION if buffer else PROMPT
            print(prompt, end="", file=self.out, flush=True)
            line = stdin.readline()
            if not line:
                break
            buffer.append(line)
            text = "".join(buffer)
            if ";" in line or text.strip().lower() in ("exit", "quit"):
                buffer = []
                stripped = text.strip().rstrip(";").strip()
                if stripped.lower() in ("exit", "quit"):
                    break
                if stripped:
                    self.execute(stripped)
        print("bye", file=self.out)


def main(argv: list[str] | None = None, out=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "faults":
        from repro.faults.demo import main as faults_main
        return faults_main(argv[1:], out=out)
    if argv and argv[0] == "resilience":
        from repro.faults.resilience_demo import main as resilience_main
        return resilience_main(argv[1:], out=out)
    if argv and argv[0] == "metrics":
        from repro.observability.demo import main as metrics_main
        return metrics_main(argv[1:], out=out)
    if argv and argv[0] == "top":
        from repro.observability.top import main as top_main
        return top_main(argv[1:], out=out)
    if argv and argv[0] == "balance":
        from repro.balancer.demo import main as balance_main
        return balance_main(argv[1:], out=out)
    if argv and argv[0] == "replicate":
        from repro.replication.demo import main as replicate_main
        return replicate_main(argv[1:], out=out)
    if argv and argv[0] == "stream":
        from repro.streaming.demo import main as stream_main
        return stream_main(argv[1:], out=out)
    if argv and argv[0] == "dash":
        from repro.observability.dash import main as dash_main
        return dash_main(argv[1:], out=out)
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="JustQL shell for the JUST reproduction engine.")
    parser.add_argument("statement", nargs="?",
                        help="one statement to execute (quote it)")
    parser.add_argument("--script", help="file of ';'-separated "
                                         "statements to run")
    parser.add_argument("--user", default="cli",
                        help="user namespace (default: cli)")
    args = parser.parse_args(argv)
    shell = Shell(user=args.user, out=out)

    if args.script:
        with open(args.script, encoding="utf-8") as handle:
            return min(1, shell.run_script(handle.read()))
    if args.statement:
        return 0 if shell.execute(args.statement) else 1
    shell.interact()
    return 0


if __name__ == "__main__":
    sys.exit(main())
