"""Analysis operations (Section V-D).

Three operation shapes, mirroring the paper's execution model:

* **1-1** — row to row (Spark SQL UDF equivalents): coordinate transforms.
* **1-N** — row to many rows: trajectory noise filtering, segmentation,
  stay-point detection, map matching.
* **N-M** — many rows to many rows: DBSCAN spatial clustering.

Every operation is a pure function over value objects, plus a registration
in :mod:`repro.sql.functions` so it is callable from JustQL as ``st_*``.
"""

from repro.ops.analysis.transforms import (
    st_wgs84_to_gcj02,
    st_gcj02_to_wgs84,
    st_gcj02_to_bd09,
    st_bd09_to_gcj02,
)
from repro.ops.analysis.noise_filter import traj_noise_filter
from repro.ops.analysis.segmentation import traj_segment
from repro.ops.analysis.staypoint import StayPoint, traj_stay_points
from repro.ops.analysis.dbscan import dbscan
from repro.ops.analysis.similarity import (
    frechet_distance,
    hausdorff_distance,
    k_similar_trajectories,
)
from repro.ops.analysis.mapmatching import MapMatcher, map_match

__all__ = [
    "st_wgs84_to_gcj02",
    "st_gcj02_to_wgs84",
    "st_gcj02_to_bd09",
    "st_bd09_to_gcj02",
    "traj_noise_filter",
    "traj_segment",
    "StayPoint",
    "traj_stay_points",
    "dbscan",
    "frechet_distance",
    "hausdorff_distance",
    "k_similar_trajectories",
    "MapMatcher",
    "map_match",
]
