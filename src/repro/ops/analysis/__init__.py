"""Implementations of the preset spatio-temporal analysis operations."""
