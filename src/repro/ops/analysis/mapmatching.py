"""HMM map matching (``st_trajMapMatching``).

The standard hidden-Markov-model formulation (Newson & Krumm, 2009):
states are candidate road segments per GPS sample, emission probability
falls off with perpendicular distance, and transition probability favours
candidate pairs whose network route length agrees with the great-circle
distance between the samples.  Decoding is Viterbi with per-step
renormalization in log space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.roadnetwork.network import Candidate, RoadNetwork
from repro.trajectory.model import GPSPoint, Trajectory

DEFAULT_SIGMA_M = 20.0       # GPS noise standard deviation
DEFAULT_BETA_M = 200.0       # tolerance of route-vs-line length mismatch
DEFAULT_RADIUS_M = 80.0      # candidate search radius
DEFAULT_MAX_CANDIDATES = 5


@dataclass(frozen=True, slots=True)
class MatchedPoint:
    """One GPS sample snapped onto a road segment."""

    point: GPSPoint
    segment_id: str
    proj_lng: float
    proj_lat: float
    distance_m: float


class MapMatcher:
    """Reusable matcher bound to one road network."""

    def __init__(self, network: RoadNetwork,
                 sigma_m: float = DEFAULT_SIGMA_M,
                 beta_m: float = DEFAULT_BETA_M,
                 radius_m: float = DEFAULT_RADIUS_M,
                 max_candidates: int = DEFAULT_MAX_CANDIDATES):
        self.network = network
        self.sigma_m = sigma_m
        self.beta_m = beta_m
        self.radius_m = radius_m
        self.max_candidates = max_candidates

    # -- probabilities (log space) ----------------------------------------------
    def _log_emission(self, candidate: Candidate) -> float:
        z = candidate.distance_m / self.sigma_m
        return -0.5 * z * z

    def _route_distance_m(self, a: Candidate, b: Candidate) -> float:
        if a.segment.segment_id == b.segment.segment_id:
            return abs(b.offset_m - a.offset_m)
        to_end = a.segment.length_m - a.offset_m
        between = self.network.route_length_m(a.segment.end_node,
                                              b.segment.start_node)
        return to_end + between + b.offset_m

    def _log_transition(self, a: Candidate, b: Candidate,
                        line_m: float) -> float:
        route_m = self._route_distance_m(a, b)
        if math.isinf(route_m):
            return -math.inf
        return -abs(route_m - line_m) / self.beta_m

    # -- Viterbi --------------------------------------------------------------------
    def match(self, trajectory: Trajectory) -> list[MatchedPoint]:
        """Snap every matchable sample of a trajectory onto the network.

        Samples with no candidate within the radius are skipped; when the
        HMM breaks (no reachable transition), decoding restarts at the
        break, as practical matchers do.
        """
        points = list(trajectory.points)
        candidate_sets: list[tuple[GPSPoint, list[Candidate]]] = []
        for point in points:
            found = self.network.candidates(point.lng, point.lat,
                                            self.radius_m,
                                            self.max_candidates)
            if found:
                candidate_sets.append((point, found))
        if not candidate_sets:
            return []
        out: list[MatchedPoint] = []
        start = 0
        while start < len(candidate_sets):
            end, decoded = self._viterbi_run(candidate_sets, start)
            out.extend(decoded)
            start = end
        return out

    def _viterbi_run(self, candidate_sets, start: int
                     ) -> tuple[int, list[MatchedPoint]]:
        point, candidates = candidate_sets[start]
        scores = [self._log_emission(c) for c in candidates]
        backpointers: list[list[int]] = []
        chain = [(point, candidates)]
        index = start + 1
        while index < len(candidate_sets):
            next_point, next_candidates = candidate_sets[index]
            line_m = chain[-1][0].distance_m(next_point)
            new_scores = []
            pointers = []
            for candidate in next_candidates:
                best_score = -math.inf
                best_prev = -1
                for prev_index, prev_candidate in enumerate(chain[-1][1]):
                    transition = self._log_transition(
                        prev_candidate, candidate, line_m)
                    score = scores[prev_index] + transition
                    if score > best_score:
                        best_score = score
                        best_prev = prev_index
                new_scores.append(best_score + self._log_emission(candidate))
                pointers.append(best_prev)
            if all(math.isinf(s) and s < 0 for s in new_scores):
                break  # HMM break: decode what we have, restart here
            top = max(new_scores)
            scores = [s - top for s in new_scores]  # renormalize
            backpointers.append(pointers)
            chain.append((next_point, next_candidates))
            index += 1
        # Backtrack.
        best = max(range(len(scores)), key=lambda i: scores[i])
        path = [best]
        for pointers in reversed(backpointers):
            path.append(pointers[path[-1]])
        path.reverse()
        decoded = []
        for (pt, candidates), choice in zip(chain, path):
            c = candidates[choice]
            decoded.append(MatchedPoint(pt, c.segment.segment_id,
                                        c.proj_lng, c.proj_lat,
                                        c.distance_m))
        return index, decoded


def map_match(trajectory: Trajectory, network: RoadNetwork,
              **params) -> list[MatchedPoint]:
    """Convenience wrapper: match one trajectory against a network."""
    if network is None:
        raise ExecutionError("map matching requires a road network")
    return MapMatcher(network, **params).match(trajectory)
