"""Trajectory similarity measures and k-similar search.

The trajectory plugin's companion system (TrajMesa, the paper's reference
[31]) serves similarity queries over stored trajectories; this module
provides the two standard curve distances — discrete Hausdorff and
discrete Fréchet — and a k-most-similar search that prunes candidates
with an envelope lower bound before computing exact distances.

Distances are planar degree-space values, consistent with the engine's
Euclidean k-NN.
"""

from __future__ import annotations

import math

from repro.curves.strategies import STQuery
from repro.errors import ExecutionError
from repro.trajectory.model import Trajectory


def _coords(trajectory: Trajectory) -> list[tuple[float, float]]:
    return [(p.lng, p.lat) for p in trajectory.points]


def _point_distance(a: tuple[float, float],
                    b: tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def _directed_hausdorff(a: list, b: list) -> float:
    worst = 0.0
    for p in a:
        best = min(_point_distance(p, q) for q in b)
        if best > worst:
            worst = best
    return worst


def hausdorff_distance(a: Trajectory, b: Trajectory) -> float:
    """Discrete Hausdorff distance between two trajectories.

    The classic "how far apart can matching points be forced" measure:
    max over both directed distances.  O(n*m).
    """
    pa, pb = _coords(a), _coords(b)
    if not pa or not pb:
        raise ExecutionError("cannot compare empty trajectories")
    return max(_directed_hausdorff(pa, pb), _directed_hausdorff(pb, pa))


def frechet_distance(a: Trajectory, b: Trajectory) -> float:
    """Discrete Fréchet distance (the "dog leash" distance).

    Order-aware: unlike Hausdorff it penalizes trajectories that visit
    the same places in a different order.  Dynamic programming, O(n*m).
    """
    pa, pb = _coords(a), _coords(b)
    if not pa or not pb:
        raise ExecutionError("cannot compare empty trajectories")
    n, m = len(pa), len(pb)
    previous = [0.0] * m
    previous[0] = _point_distance(pa[0], pb[0])
    for j in range(1, m):
        previous[j] = max(previous[j - 1], _point_distance(pa[0], pb[j]))
    for i in range(1, n):
        current = [0.0] * m
        current[0] = max(previous[0], _point_distance(pa[i], pb[0]))
        for j in range(1, m):
            reachable = min(previous[j], previous[j - 1], current[j - 1])
            current[j] = max(reachable, _point_distance(pa[i], pb[j]))
        previous = current
    return previous[-1]


def envelope_lower_bound(a: Trajectory, b: Trajectory) -> float:
    """A cheap lower bound on both distances: MBR separation.

    When the MBRs are ``d`` apart, every point pairing is at least ``d``
    apart, so ``d`` lower-bounds Hausdorff and Fréchet alike — safe to
    prune with.
    """
    env_a, env_b = a.envelope, b.envelope
    dx = max(env_b.min_lng - env_a.max_lng,
             env_a.min_lng - env_b.max_lng, 0.0)
    dy = max(env_b.min_lat - env_a.max_lat,
             env_a.min_lat - env_b.max_lat, 0.0)
    return math.hypot(dx, dy)


_MEASURES = {
    "hausdorff": hausdorff_distance,
    "frechet": frechet_distance,
}


def k_similar_trajectories(table, query: Trajectory, k: int,
                           measure: str = "hausdorff",
                           search_margin_deg: float = 0.05,
                           job=None) -> list[tuple[dict, float]]:
    """The k stored trajectories most similar to ``query``.

    Candidates are fetched with one spatial range query around the query
    trajectory's MBR (similar trajectories must lie nearby), pruned with
    the MBR lower bound, and ranked by the exact distance.  Returns
    ``(row, distance)`` pairs, nearest first.
    """
    if k <= 0:
        raise ExecutionError("k must be positive")
    try:
        distance_fn = _MEASURES[measure.lower()]
    except KeyError:
        valid = ", ".join(sorted(_MEASURES))
        raise ExecutionError(
            f"unknown similarity measure {measure!r}; expected one of "
            f"{valid}") from None

    probe = query.envelope.buffer(search_margin_deg, search_margin_deg)
    candidates = table.query(STQuery(envelope=probe),
                             predicate="intersects", job=job)

    # Rank candidates by the cheap bound, compute exact distances in
    # that order, and stop once the bound exceeds the current k-th best.
    bounded = sorted(
        ((envelope_lower_bound(query, row["item"]), row)
         for row in candidates if row["item"].tid != query.tid),
        key=lambda pair: pair[0])
    results: list[tuple[dict, float]] = []
    kth_best = math.inf
    for bound, row in bounded:
        if len(results) >= k and bound > kth_best:
            break
        exact = distance_fn(query, row["item"])
        results.append((row, exact))
        results.sort(key=lambda pair: pair[1])
        if len(results) > k:
            results.pop()
        if len(results) == k:
            kth_best = results[-1][1]
    return results
