"""1-1 analysis operations: coordinate-system transforms.

These are the engine's UDF-style operations (``SELECT
st_WGS84ToGCJ02(lng, lat) FROM ...``).  They operate on Points and return
Points so they compose with other spatial functions.
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.geometry.transforms import (
    bd09_to_gcj02,
    gcj02_to_bd09,
    gcj02_to_wgs84,
    wgs84_to_gcj02,
)


def st_wgs84_to_gcj02(point: Point) -> Point:
    """WGS84 -> GCJ02 (Chinese map datum)."""
    lng, lat = wgs84_to_gcj02(point.lng, point.lat)
    return Point(lng, lat, point.time)


def st_gcj02_to_wgs84(point: Point) -> Point:
    """GCJ02 -> WGS84 (approximate inverse)."""
    lng, lat = gcj02_to_wgs84(point.lng, point.lat)
    return Point(lng, lat, point.time)


def st_gcj02_to_bd09(point: Point) -> Point:
    """GCJ02 -> BD09 (Baidu datum)."""
    lng, lat = gcj02_to_bd09(point.lng, point.lat)
    return Point(lng, lat, point.time)


def st_bd09_to_gcj02(point: Point) -> Point:
    """BD09 -> GCJ02."""
    lng, lat = bd09_to_gcj02(point.lng, point.lat)
    return Point(lng, lat, point.time)
