"""Stay-point detection (``st_trajStayPoint``).

The classic algorithm from trajectory-mining literature (Zheng, TIST
2015): a stay point is a maximal run of samples that remain within
``distance_threshold_m`` of the run's first sample for at least
``time_threshold_s``.  Courier delivery stops surface this way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trajectory.model import Trajectory


@dataclass(frozen=True, slots=True)
class StayPoint:
    """One detected stay: centroid position plus dwell interval."""

    lng: float
    lat: float
    arrive_time: float
    leave_time: float
    num_points: int

    @property
    def duration_s(self) -> float:
        return self.leave_time - self.arrive_time


DEFAULT_DISTANCE_THRESHOLD_M = 200.0
DEFAULT_TIME_THRESHOLD_S = 20 * 60.0


def traj_stay_points(trajectory: Trajectory,
                     distance_threshold_m: float =
                     DEFAULT_DISTANCE_THRESHOLD_M,
                     time_threshold_s: float = DEFAULT_TIME_THRESHOLD_S
                     ) -> list[StayPoint]:
    """Detect stay points; a 1-N operation returning zero or more stays."""
    points = trajectory.points
    stays: list[StayPoint] = []
    i = 0
    n = len(points)
    while i < n:
        j = i + 1
        while j < n and points[i].distance_m(points[j]) \
                <= distance_threshold_m:
            j += 1
        # points[i:j] stay within the radius of points[i]
        if points[j - 1].time - points[i].time >= time_threshold_s:
            cluster = points[i:j]
            stays.append(StayPoint(
                lng=sum(p.lng for p in cluster) / len(cluster),
                lat=sum(p.lat for p in cluster) / len(cluster),
                arrive_time=cluster[0].time,
                leave_time=cluster[-1].time,
                num_points=len(cluster),
            ))
            i = j
        else:
            i += 1
    return stays
