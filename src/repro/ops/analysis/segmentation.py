"""Trajectory segmentation (``st_trajSegmentation``).

Splits a trajectory into sub-trajectories wherever consecutive samples are
separated by more than a time gap or a distance gap — the standard
preprocessing step before map matching or stay-point analysis.  This is a
genuine 1-N operation: one input row produces several output rows.
"""

from __future__ import annotations

from repro.trajectory.model import Trajectory

DEFAULT_MAX_TIME_GAP_S = 30 * 60.0
DEFAULT_MAX_DISTANCE_GAP_M = 5000.0
DEFAULT_MIN_SEGMENT_POINTS = 2


def traj_segment(trajectory: Trajectory,
                 max_time_gap_s: float = DEFAULT_MAX_TIME_GAP_S,
                 max_distance_gap_m: float = DEFAULT_MAX_DISTANCE_GAP_M,
                 min_points: int = DEFAULT_MIN_SEGMENT_POINTS
                 ) -> list[Trajectory]:
    """Split a trajectory at large time/space gaps.

    Segments shorter than ``min_points`` samples are discarded.  Segment
    ids are ``<tid>#<n>`` in temporal order.
    """
    points = trajectory.points
    if not points:
        return []
    cuts = [0]
    for i, (a, b) in enumerate(zip(points, points[1:]), start=1):
        if (b.time - a.time > max_time_gap_s
                or a.distance_m(b) > max_distance_gap_m):
            cuts.append(i)
    cuts.append(len(points))
    segments = []
    for n, (start, stop) in enumerate(zip(cuts, cuts[1:])):
        if stop - start >= min_points:
            segments.append(
                trajectory.subtrajectory(start, stop, tid_suffix=f"#{n}"))
    return segments
