"""DBSCAN spatial clustering (``st_DBSCAN``), an N-M operation.

Density-based clustering (Ester et al., KDD 1996) over 2D coordinates.
Neighbourhood lookups use a uniform grid of cell size ``radius`` so the
whole run is O(n) for typical urban densities instead of O(n^2).

Distances are planar degree-space distances, matching the engine's
Euclidean k-NN; pass a radius in degrees (``km_to_degrees`` helps).
"""

from __future__ import annotations

import math
from collections import defaultdict, deque

NOISE = -1


def dbscan(points: list[tuple[float, float]], min_pts: int,
           radius: float) -> list[int]:
    """Cluster ``(lng, lat)`` points; returns a label per input point.

    Labels are 0..k-1 for cluster members and :data:`NOISE` (-1) for noise
    points.  ``min_pts`` counts the point itself, as in the original paper.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    if min_pts < 1:
        raise ValueError("min_pts must be >= 1")
    n = len(points)
    labels = [None] * n

    grid: dict[tuple[int, int], list[int]] = defaultdict(list)
    for i, (x, y) in enumerate(points):
        grid[(math.floor(x / radius), math.floor(y / radius))].append(i)

    r2 = radius * radius

    def neighbours(i: int) -> list[int]:
        x, y = points[i]
        cx, cy = math.floor(x / radius), math.floor(y / radius)
        out = []
        for gx in (cx - 1, cx, cx + 1):
            for gy in (cy - 1, cy, cy + 1):
                for j in grid.get((gx, gy), ()):
                    dx = points[j][0] - x
                    dy = points[j][1] - y
                    if dx * dx + dy * dy <= r2:
                        out.append(j)
        return out

    cluster = 0
    for i in range(n):
        if labels[i] is not None:
            continue
        seed_neighbours = neighbours(i)
        if len(seed_neighbours) < min_pts:
            labels[i] = NOISE
            continue
        labels[i] = cluster
        queue = deque(seed_neighbours)
        while queue:
            j = queue.popleft()
            if labels[j] == NOISE:
                labels[j] = cluster  # border point reached by a core point
            if labels[j] is not None:
                continue
            labels[j] = cluster
            j_neighbours = neighbours(j)
            if len(j_neighbours) >= min_pts:
                queue.extend(j_neighbours)
        cluster += 1
    return labels


def cluster_centroids(points: list[tuple[float, float]],
                      labels: list[int]) -> dict[int, tuple[float, float]]:
    """Mean position per cluster label (noise excluded)."""
    sums: dict[int, list[float]] = defaultdict(lambda: [0.0, 0.0, 0])
    for (x, y), label in zip(points, labels):
        if label == NOISE:
            continue
        acc = sums[label]
        acc[0] += x
        acc[1] += y
        acc[2] += 1
    return {label: (acc[0] / acc[2], acc[1] / acc[2])
            for label, acc in sums.items()}
