"""Trajectory noise filtering (``st_trajNoiseFilter``).

Speed-based outlier removal as in CloudTP/TrajMesa preprocessing: a GPS
sample is noise when reaching it from the last accepted sample would
require an implausible speed.  The first sample is trusted; a configurable
consecutive-outlier limit re-anchors the filter after GPS "jumps" so a
genuinely moved vehicle is not filtered forever.
"""

from __future__ import annotations

from repro.trajectory.model import STSeries, Trajectory

#: Default maximum plausible speed (m/s).  ~180 km/h covers lorries.
DEFAULT_MAX_SPEED_MPS = 50.0
#: After this many consecutive rejections, accept the next sample anyway.
DEFAULT_REANCHOR_AFTER = 5


def filter_series(series: STSeries,
                  max_speed_mps: float = DEFAULT_MAX_SPEED_MPS,
                  reanchor_after: int = DEFAULT_REANCHOR_AFTER) -> STSeries:
    """Return a copy of ``series`` with speed-outlier samples removed."""
    points = series.points
    if len(points) <= 1:
        return series
    kept = [points[0]]
    rejected_streak = 0
    for point in points[1:]:
        if kept[-1].speed_to_mps(point) <= max_speed_mps:
            kept.append(point)
            rejected_streak = 0
        else:
            rejected_streak += 1
            if rejected_streak >= reanchor_after:
                kept.append(point)  # re-anchor: the vehicle really moved
                rejected_streak = 0
    return STSeries(kept)


def traj_noise_filter(trajectory: Trajectory,
                      max_speed_mps: float = DEFAULT_MAX_SPEED_MPS,
                      reanchor_after: int = DEFAULT_REANCHOR_AFTER
                      ) -> Trajectory:
    """1-N operation (N=1 here): the trajectory with noise removed."""
    cleaned = filter_series(trajectory.series, max_speed_mps,
                            reanchor_after)
    return Trajectory(trajectory.tid, trajectory.oid, cleaned)
