"""Continuous ingestion + the adaptive OLTP path (Section IX).

A Kafka-like topic receives courier GPS pings; a micro-batch loader
drains it into an indexed table while queries run concurrently — new and
even historical events become queryable immediately, with no index
rebuild (the property Table I denies to every Hadoop/Spark baseline).
The engine runs with the cost-based planner and adaptive execution, so
small dispatch lookups skip the distributed-driver overhead.

Run:  python examples/streaming_ingest.py
"""

import random

from repro import Envelope, JustEngine

T0 = 1_700_000_000.0


def ping(rng, i, t):
    return {"courier": f"c{i % 40}",
            "lng": 116.2 + rng.random() * 0.2,
            "lat": 39.85 + rng.random() * 0.1,
            "ts_ms": int(t * 1000)}


def main() -> None:
    engine = JustEngine(cost_based_planner=True, adaptive_execution=True)
    engine.sql("CREATE TABLE pings (fid string:primary key, "
               "name string, time date, geom point)")
    topic = engine.create_topic("courier-gps")
    loader = engine.stream_load("courier-gps", "pings", {
        "fid": "to_string(ts_ms)",
        "name": "courier",
        "time": "long_to_date_ms(ts_ms)",
        "geom": "lng_lat_to_point(lng, lat)",
    }, batch_size=500)

    rng = random.Random(7)
    # Three "minutes" of traffic arrive while we consume and query.
    for minute in range(3):
        t_base = T0 + minute * 60
        topic.append_many(ping(rng, i, t_base + i * 0.05)
                          for i in range(1_200))
        stats = loader.drain()
        table = engine.table("pings")
        print(f"minute {minute}: consumed {stats['consumed']:>5} events "
              f"(lag {loader.lag}), table now {table.row_count} rows, "
              f"ingest {stats['sim_ms']:.0f} sim-ms")

        # Query the freshest data immediately.
        rs = engine.st_range_query(
            "pings", Envelope(116.25, 39.87, 116.3, 39.92),
            t_base, t_base + 60)
        path = "local" if "driver_local" in rs.breakdown else "distributed"
        print(f"          live query: {len(rs.rows)} pings, "
              f"{rs.sim_ms:.0f} sim-ms via the {path} path")

    # A late, historical correction: yesterday's ping arrives now.
    topic.append(ping(rng, 999, T0 - 86400))
    loader.drain()
    rs = engine.st_range_query(
        "pings", Envelope(116.1, 39.8, 116.5, 40.0),
        T0 - 86400 - 1, T0 - 86400 + 1)
    print(f"late historical event indexed and queryable: "
          f"{len(rs.rows)} row(s) found in yesterday's window")


if __name__ == "__main__":
    main()
