"""The Map Recovery System (Section VII-B, Figure 9b).

Courier GPS logs are loaded into JUST daily; trajectories for a living
area are fetched with a spatio-temporal range query, cleaned with the
preset preprocessing operations, and fed to the density-based map
recovery pipeline, which infers road segments plus the speed and travel
mode (riding / walking) of each — the roads missing from commercial maps.

Run:  python examples/map_recovery.py
"""

import random

from repro import Envelope, JustEngine, STSeries, Trajectory
from repro.geometry.distance import METERS_PER_DEGREE
from repro.ops import map_match, traj_noise_filter, traj_segment
from repro.roadnetwork import recover_map

#: The living area whose roads the commercial map lacks.
LIVING_AREA = (116.30, 39.90)
T0 = 1_500_000_000.0


def simulated_courier_logs(num_couriers: int = 12) -> list[Trajectory]:
    """Couriers riding a small street grid inside the living area."""
    rng = random.Random(20140301)
    step = 120.0 / METERS_PER_DEGREE          # 120 m blocks
    streets = 5
    trajectories = []
    for courier in range(num_couriers):
        points = []
        t = T0 + courier * 3600.0
        # Ride along a horizontal street, then a vertical one.
        street = rng.randrange(streets)
        for i in range(40):
            lng = LIVING_AREA[0] + i * step / 8 + rng.gauss(0, 6e-6)
            lat = LIVING_AREA[1] + street * step + rng.gauss(0, 6e-6)
            points.append((lng, lat, t))
            t += 6.0
        # Turn the corner at the end of the street, ride up the avenue.
        corner_lng = LIVING_AREA[0] + 39 * step / 8
        for i in range(40):
            lng = corner_lng + rng.gauss(0, 6e-6)
            lat = (LIVING_AREA[1] + street * step + i * step / 8
                   + rng.gauss(0, 6e-6))
            points.append((lng, lat, t))
            t += 6.0
        # A GPS glitch to exercise the noise filter.
        glitch = (LIVING_AREA[0] + 0.2, LIVING_AREA[1], t + 1)
        points.append(glitch)
        trajectories.append(
            Trajectory(f"courier{courier}", f"c{courier}",
                       STSeries(sorted(points, key=lambda p: p[2]))))
    return trajectories


def main() -> None:
    engine = JustEngine()
    table = engine.create_plugin_table("courier_logs", "trajectory")
    table.insert_trajectories(simulated_courier_logs())
    print(f"loaded {table.row_count} courier trajectories")

    # -- fetch the living area's trajectories (ST range query) -----------
    area = Envelope(LIVING_AREA[0] - 0.005, LIVING_AREA[1] - 0.005,
                    LIVING_AREA[0] + 0.02, LIVING_AREA[1] + 0.02)
    result = engine.st_range_query("courier_logs", area,
                                   T0 - 3600, T0 + 86400)
    print(f"fetched {len(result.rows)} trajectories in "
          f"{result.sim_ms:.0f} simulated ms")

    # -- preprocess: noise filter + segmentation ---------------------------
    cleaned = []
    for row in result.rows:
        filtered = traj_noise_filter(row["item"])
        cleaned.extend(traj_segment(filtered, max_time_gap_s=1800))
    total_before = sum(len(r["item"].points) for r in result.rows)
    total_after = sum(len(t.points) for t in cleaned)
    print(f"preprocessing: {total_before} -> {total_after} GPS points "
          f"({len(cleaned)} segments)")

    # -- recover the road network -------------------------------------------
    network, segments = recover_map(cleaned, cell_m=40, min_support=3)
    modes = {}
    for segment in segments:
        modes[segment.mode] = modes.get(segment.mode, 0) + 1
    print(f"recovered {len(segments)} road segments "
          f"({network.num_nodes} nodes); modes: {modes}")
    speeds = [s.speed_mps for s in segments]
    print(f"mean inferred speed: {sum(speeds) / len(speeds):.1f} m/s")

    # -- use the recovered map: match a fresh trajectory ----------------------
    fresh = simulated_courier_logs(1)[0]
    fresh = traj_noise_filter(fresh)
    matched = map_match(fresh, network, radius_m=80.0)
    print(f"map-matched a new trajectory: {len(matched)}/"
          f"{len(fresh.points)} samples snapped; mean snap distance "
          f"{sum(m.distance_m for m in matched) / len(matched):.1f} m")


if __name__ == "__main__":
    main()
