"""Trajectory analytics through JustQL + the multi-user service layer.

Shows the paper's three analysis-operation shapes on the trajectory
plugin table — 1-1 (noise filtering), 1-N (segmentation, stay points),
N-M (DBSCAN over delivery stops) — and the PaaS flow: two users sharing
one engine through the SDK, each inside an invisible namespace.

Run:  python examples/trajectory_analytics.py
"""

from repro.datagen import generate_traj_dataset
from repro.ops import traj_stay_points
from repro.service import JustClient, JustServer


def main() -> None:
    server = JustServer()

    # -- user "ops" loads the fleet's trajectories --------------------------
    with JustClient(server, "ops") as ops:
        ops.execute_query("CREATE TABLE fleet AS trajectory")
        trajs = generate_traj_dataset(60, 200)
        table = server.engine.table("ops__fleet")
        table.insert_trajectories(trajs)
        print(f"[ops] loaded {table.row_count} trajectories")

        # 1-1: noise filtering via SQL.
        rs = ops.execute_query(
            "SELECT tid, st_trajNoiseFilter(item) AS clean FROM fleet "
            "LIMIT 5")
        for row in rs:
            print(f"[ops] {row['tid']}: "
                  f"{len(row['clean'].points)} clean points")

        # 1-N: segmentation — one row in, many segments out.
        rs = ops.execute_query(
            "SELECT st_trajSegmentation(item) AS segment FROM fleet")
        print(f"[ops] segmentation: {table.row_count} trajectories -> "
              f"{len(rs)} segments")

        # 1-N: stay points (delivery stops).
        rs = ops.execute_query(
            "SELECT tid, st_trajStayPoint(item) AS stop FROM fleet")
        stops = rs.rows
        print(f"[ops] detected {len(stops)} delivery stops")

        # Persist the stops as a view, cluster them with N-M DBSCAN.
        if stops:
            ops.execute_query("CREATE VIEW stop_points AS SELECT tid, "
                              "st_trajStayPoint(item) AS stop FROM fleet")
            # DBSCAN needs point geometries; build them in a view query.
            engine = server.engine
            from repro.dataframe import DataFrame
            from repro.geometry import Point
            stop_rows = [{"tid": s["tid"],
                          "geom": Point(s["stop"].lng, s["stop"].lat)}
                         for s in stops]
            engine.create_view("ops__stop_geoms",
                               DataFrame.from_rows(stop_rows,
                                                   ["tid", "geom"]))
            rs = ops.execute_query(
                "SELECT st_DBSCAN(geom, 2, 0.03) FROM stop_geoms")
            clusters = {r["cluster"] for r in rs if r["cluster"] >= 0}
            print(f"[ops] DBSCAN grouped stops into {len(clusters)} "
                  f"service zones")

    # -- user "analyst" cannot see ops' tables -------------------------------
    with JustClient(server, "analyst") as analyst:
        tables = analyst.execute_query("SHOW TABLES").rows
        print(f"[analyst] visible tables: {tables}  (namespace isolation)")
        analyst.execute_query("CREATE TABLE fleet AS trajectory")
        print("[analyst] created an independent 'fleet' without conflict")

    # Direct library access for the same stay-point logic:
    sample = generate_traj_dataset(1, 400)[0]
    stays = traj_stay_points(sample, distance_threshold_m=300,
                             time_threshold_s=600)
    print(f"library API: {len(stays)} stays in a fresh trajectory")


if __name__ == "__main__":
    main()
