"""The Urban Block Indicator System (Section VII-B, Figure 9a).

Partitions the city into ~150 m grid blocks, computes per-block indicators
(order volume, purchasing power, courier traffic) from the stored
datasets, persists them as an XZ2T-indexed polygon table, and answers
"address portrait" lookups for any area with a spatio-temporal range
query — the paper's exact deployment.

Run:  python examples/urban_block_indicators.py
"""

from collections import defaultdict

from repro import JustEngine, Envelope, Polygon
from repro.datagen import generate_order_dataset, generate_traj_dataset
from repro.dataframe import DataFrame
from repro.geometry import geohash
from repro.geometry.distance import METERS_PER_DEGREE

BLOCK_M = 150.0
AREA = (116.25, 39.85, 116.45, 40.0)  # a downtown slice


def block_polygon(col: int, row: int, size: float) -> Polygon:
    lng = AREA[0] + col * size
    lat = AREA[1] + row * size
    return Polygon([(lng, lat), (lng + size, lat),
                    (lng + size, lat + size), (lng, lat + size)])


def main() -> None:
    engine = JustEngine()
    size = BLOCK_M / METERS_PER_DEGREE

    # -- ingest the source datasets ----------------------------------------
    orders = generate_order_dataset(8_000)
    engine.sql("CREATE TABLE orders (fid integer:primary key, time date,"
               " geom point, amount double, category string)")
    engine.insert("orders", orders)

    trajs = generate_traj_dataset(80, 150)
    traj_table = engine.create_plugin_table("courier_traj", "trajectory")
    traj_table.insert_trajectories(trajs)

    # -- compute indicators per grid block ----------------------------------
    window = Envelope(*AREA)
    in_area = engine.spatial_range_query("orders", window).rows
    purchasing = defaultdict(float)
    volume = defaultdict(int)
    for row in in_area:
        col = int((row["geom"].lng - AREA[0]) / size)
        gr = int((row["geom"].lat - AREA[1]) / size)
        purchasing[(col, gr)] += row["amount"]
        volume[(col, gr)] += 1

    courier_visits = defaultdict(int)
    for traj_row in engine.spatial_range_query("courier_traj",
                                               window).rows:
        for point in traj_row["item"].points:
            if window.contains_point(point.lng, point.lat):
                col = int((point.lng - AREA[0]) / size)
                gr = int((point.lat - AREA[1]) / size)
                courier_visits[(col, gr)] += 1

    t0 = min(r["time"] for r in orders)
    blocks = []
    for (col, gr), count in volume.items():
        # The paper names ~150 m blocks by their GeoHash-7 code.
        center_lng = AREA[0] + (col + 0.5) * size
        center_lat = AREA[1] + (gr + 0.5) * size
        blocks.append({
            "block_id": geohash.encode(center_lng, center_lat, 7),
            "time": t0,
            "geom": block_polygon(col, gr, size),
            "order_volume": count,
            "purchasing_power": round(purchasing[(col, gr)], 2),
            "courier_traffic": courier_visits.get((col, gr), 0),
        })
    print(f"computed indicators for {len(blocks)} blocks "
          f"({BLOCK_M:.0f} m grid)")

    # -- persist as a view, then as an indexed table -------------------------
    engine.create_view("block_view", DataFrame.from_rows(
        blocks, ["block_id", "time", "geom", "order_volume",
                 "purchasing_power", "courier_traffic"]))
    engine.sql("STORE VIEW block_view TO TABLE urban_blocks")

    # -- the address-portrait lookup (Figure 9a) ------------------------------
    probe = Envelope(116.3, 39.9, 116.33, 39.93)
    rs = engine.spatial_range_query("urban_blocks", probe)
    print(f"address portrait for a {probe.width * METERS_PER_DEGREE:.0f}m"
          f" box: {len(rs.rows)} blocks, simulated {rs.sim_ms:.0f} ms")
    top = sorted(rs.rows, key=lambda b: -b["purchasing_power"])[:5]
    print("top blocks by purchasing power:")
    for block in top:
        print(f"  {block['block_id']:>8}  power="
              f"{block['purchasing_power']:>9.2f}  orders="
              f"{block['order_volume']:<4} courier_pings="
              f"{block['courier_traffic']}")


if __name__ == "__main__":
    main()
