"""Quickstart: the JustQL tour from the paper.

Creates a point table, loads purchase-order-like data, and runs the three
query operations of Section V-C (spatial range, spatio-temporal range,
k-NN) plus views — everything through SQL, as a JUST user would.

Run:  python examples/quickstart.py
"""

from repro import JustEngine
from repro.datagen import generate_order_dataset


def main() -> None:
    engine = JustEngine()

    # -- definition: CREATE TABLE with a Z2 + Z2T indexed point column --
    print(engine.sql("""
        CREATE TABLE orders (
            fid integer:primary key,
            time date,
            geom point:srid=4326,
            amount double,
            category string
        )
    """).message)

    # -- manipulation: LOAD from a registered external source -----------
    rows = generate_order_dataset(5_000)
    engine.register_source("warehouse.orders", [
        {"oid": r["fid"], "lng": r["geom"].lng, "lat": r["geom"].lat,
         "ts": int(r["time"] * 1000), "amount": r["amount"],
         "category": r["category"]} for r in rows])
    print(engine.sql("""
        LOAD hive:warehouse.orders TO geomesa:orders CONFIG {
            'fid': 'oid',
            'time': 'long_to_date_ms(ts)',
            'geom': 'lng_lat_to_point(lng, lat)',
            'amount': 'amount',
            'category': 'category'
        }
    """).message)

    # -- query: spatial range --------------------------------------------
    rs = engine.sql("""
        SELECT fid, category, amount FROM orders
        WHERE geom WITHIN st_makeMBR(116.2, 39.8, 116.4, 40.0)
    """)
    print(f"spatial range query: {len(rs)} orders, "
          f"simulated {rs.sim_ms:.0f} ms")

    # -- query: spatio-temporal range -------------------------------------
    t0 = min(r["time"] for r in rows)
    rs = engine.sql(f"""
        SELECT fid, amount FROM orders
        WHERE geom WITHIN st_makeMBR(116.2, 39.8, 116.4, 40.0)
          AND time BETWEEN {t0} AND {t0 + 7 * 86400}
    """)
    print(f"spatio-temporal query:  {len(rs)} orders, "
          f"simulated {rs.sim_ms:.0f} ms")

    # -- query: k-NN ("nearest restaurants" of the paper) ------------------
    rs = engine.sql("""
        SELECT fid, geom FROM orders
        WHERE geom IN st_KNN(st_makePoint(116.397, 39.908), 5)
    """)
    print("5 nearest orders to Tiananmen:",
          [row["fid"] for row in rs])

    # -- views: one query, multiple usages ---------------------------------
    engine.sql("""
        CREATE VIEW downtown AS
        SELECT category, amount FROM orders
        WHERE geom WITHIN st_makeMBR(116.25, 39.85, 116.45, 40.0)
    """)
    rs = engine.sql("""
        SELECT category, count(*) AS cnt, avg(amount) AS avg_amount
        FROM downtown GROUP BY category ORDER BY cnt DESC LIMIT 3
    """)
    print("top categories downtown:")
    for row in rs:
        print(f"  {row['category']:>12}  n={row['cnt']:<5} "
              f"avg={row['avg_amount']:.2f}")

    # The cursor interface of the paper's SDK snippet:
    rs = engine.sql("SELECT fid FROM orders LIMIT 3")
    while rs.has_next():
        print("cursor row:", rs.next())


if __name__ == "__main__":
    main()
