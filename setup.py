"""Setuptools entry point.

The offline environment ships setuptools 65.5 without the ``wheel``
package, so PEP 660 editable installs are unavailable; this classic
``setup.py`` keeps ``pip install -e .`` working there.
"""

from setuptools import setup

setup()
